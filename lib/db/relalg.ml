type arg =
  | Col of int
  | Const of Value.t

type cond =
  | Eq of arg * arg
  | Domain_pred of string * arg list
  | Not of cond
  | And_c of cond * cond
  | Or_c of cond * cond

type t =
  | Rel of string
  | Lit of Relation.t
  | Select of cond * t
  | Project of int list * t
  | Product of t * t
  | Join of (int * int) list * t * t
  | Union of t * t
  | Diff of t * t

let rec cond_max_col = function
  | Eq (a, b) -> max (arg_max_col a) (arg_max_col b)
  | Domain_pred (_, args) -> List.fold_left (fun m a -> max m (arg_max_col a)) (-1) args
  | Not c -> cond_max_col c
  | And_c (a, b) | Or_c (a, b) -> max (cond_max_col a) (cond_max_col b)

and arg_max_col = function Col i -> i | Const _ -> -1

let arity_check ~schema plan =
  let ( let* ) = Result.bind in
  let rec go = function
    | Rel name -> (
      match Schema.arity schema name with
      | Some a -> Ok a
      | None -> Error (Printf.sprintf "unknown relation %s" name))
    | Lit r -> Ok (Relation.arity r)
    | Select (cond, p) ->
      let* a = go p in
      if cond_max_col cond >= a then
        Error (Printf.sprintf "selection touches column %d of arity %d" (cond_max_col cond) a)
      else Ok a
    | Project (cols, p) ->
      let* a = go p in
      if List.exists (fun c -> c < 0 || c >= a) cols then
        Error (Printf.sprintf "projection out of range for arity %d" a)
      else Ok (List.length cols)
    | Product (p, q) ->
      let* a = go p in
      let* b = go q in
      Ok (a + b)
    | Join (pairs, p, q) ->
      let* a = go p in
      let* b = go q in
      if List.exists (fun (i, j) -> i < 0 || i >= a || j < 0 || j >= b) pairs then
        Error (Printf.sprintf "join columns out of range for arities %d and %d" a b)
      else Ok (a + b)
    | Union (p, q) | Diff (p, q) ->
      let* a = go p in
      let* b = go q in
      if a <> b then Error (Printf.sprintf "arity mismatch %d vs %d" a b) else Ok a
  in
  go plan

let no_domain_pred name _ =
  invalid_arg (Printf.sprintf "Relalg.eval: no evaluator for domain predicate %s" name)

let eval_arg tup = function
  | Col i -> List.nth tup i
  | Const v -> v

let rec eval_cond domain_pred tup = function
  | Eq (a, b) -> Value.equal (eval_arg tup a) (eval_arg tup b)
  | Domain_pred (p, args) -> domain_pred p (List.map (eval_arg tup) args)
  | Not c -> not (eval_cond domain_pred tup c)
  | And_c (a, b) -> eval_cond domain_pred tup a && eval_cond domain_pred tup b
  | Or_c (a, b) -> eval_cond domain_pred tup a || eval_cond domain_pred tup b

let eval ~state ?budget ?(domain_pred = no_domain_pred) plan =
  let module B = Fq_core.Budget in
  let module T = Fq_core.Telemetry in
  (* Every operator charges one unit plus the cardinality it materialized,
     against the explicit budget if given, else the ambient one — so a
     governed front-end bounds even plans evaluated deep inside a compiled
     tier.  [Budget.Exhausted] propagates; front-ends [guard].  Telemetry
     sees each materialization too: the per-node output-cardinality
     histogram is what a perf PR reads to find the hot operator. *)
  let settle rel =
    Fq_core.Fault.hit "relalg.node";
    let card = Relation.cardinal rel in
    T.count "relalg.nodes";
    T.observe "relalg.node_card" (float_of_int card);
    let n = 1 + card in
    (match budget with
    | Some b ->
      B.charge b n;
      B.ensure_size b card
    | None -> B.charge_ambient n);
    rel
  in
  let rec go = function
    | Rel name -> (
      try settle (State.relation state name)
      with Not_found -> invalid_arg (Printf.sprintf "Relalg.eval: unknown relation %s" name))
    | Lit r -> settle r
    | Select (cond, p) -> settle (Relation.filter (fun tup -> eval_cond domain_pred tup cond) (go p))
    | Project (cols, p) -> settle (Relation.map_project cols (go p))
    | Product (p, q) -> settle (Relation.product (go p) (go q))
    | Join (pairs, p, q) -> settle (Relation.equijoin pairs (go p) (go q))
    | Union (p, q) -> settle (Relation.union (go p) (go q))
    | Diff (p, q) -> settle (Relation.diff (go p) (go q))
  in
  T.with_span "relalg.eval" (fun () ->
      let rel = go plan in
      T.set_attr "out_card" (T.Int (Relation.cardinal rel));
      rel)

let rec size = function
  | Rel _ | Lit _ -> 1
  | Select (_, p) | Project (_, p) -> 1 + size p
  | Product (p, q) | Join (_, p, q) | Union (p, q) | Diff (p, q) -> 1 + size p + size q

let pp_arg fmt = function
  | Col i -> Format.fprintf fmt "#%d" i
  | Const v -> Value.pp fmt v

let rec pp_cond fmt = function
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_arg a pp_arg b
  | Domain_pred (p, args) ->
    Format.fprintf fmt "%s(%a)" p
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_arg)
      args
  | Not c -> Format.fprintf fmt "~(%a)" pp_cond c
  | And_c (a, b) -> Format.fprintf fmt "(%a & %a)" pp_cond a pp_cond b
  | Or_c (a, b) -> Format.fprintf fmt "(%a | %a)" pp_cond a pp_cond b

let rec pp fmt = function
  | Rel name -> Format.pp_print_string fmt name
  | Lit r ->
    if Relation.cardinal r <= 4 then Relation.pp fmt r
    else Format.fprintf fmt "<lit:%d tuples>" (Relation.cardinal r)
  | Select (c, p) -> Format.fprintf fmt "select[%a](%a)" pp_cond c pp p
  | Project (cols, p) ->
    Format.fprintf fmt "project[%a](%a)"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") Format.pp_print_int)
      cols pp p
  | Product (p, q) -> Format.fprintf fmt "(%a x %a)" pp p pp q
  | Join (pairs, p, q) ->
    Format.fprintf fmt "(%a |x|[%a] %a)" pp p
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ",")
         (fun fmt (i, j) -> Format.fprintf fmt "%d=%d" i j))
      pairs pp q
  | Union (p, q) -> Format.fprintf fmt "(%a U %a)" pp p pp q
  | Diff (p, q) -> Format.fprintf fmt "(%a - %a)" pp p pp q
