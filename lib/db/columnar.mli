(** Columnar batch kernel: the execution representation of the
    batch-at-a-time {!Relalg} engine.

    A batch stores a relation column-major as dictionary codes — one
    [int array] per attribute — with an optional {e selection vector}
    mapping logical to physical rows, so filters and anti-joins are
    index-only.  All batches of one plan evaluation share a {!Dict}:
    value equality is code equality, and when the dictionary was built
    rank-ordered ({!Dict.of_sorted_values}) the final conversion back to
    a canonical {!Relation} sorts unboxed ints only.

    Every operator maintains the set-semantics invariant (logical rows
    duplicate-free), so per-operator cardinalities match the
    row-at-a-time engine exactly — budget charges and telemetry
    histograms agree across engines. *)

module Dict : sig
  type t

  val create : ?size:int -> unit -> t

  val of_sorted_values : Value.t list -> t
  (** Dictionary over a duplicate-free, {!Value.compare}-ascending value
      list; codes are ranks, enabling the int-only canonical sort in
      {!to_relation}. *)

  val overlay : t -> t
  (** A fresh mutable layer over [parent]: lookups fall through to the
      parent, insertions stay local. Lets one frozen storage dictionary
      (cached on the {!State}) serve concurrent evaluations, each adding
      only its plan's literal values. *)

  val size : t -> int
  (** Total codes, parent layers included. *)

  val ordered : t -> bool
  (** Codes are {!Value.compare} ranks across all layers (no
      out-of-order insertions). *)

  val encode : t -> Value.t -> int
  (** Code for a value, inserting it into the top layer if absent in any
      layer (which may clear [ordered]). *)

  val find : t -> Value.t -> int option
  (** Code for a value known to any layer; [None] means the value occurs
      nowhere in the encoded data. *)

  val decode : t -> int -> Value.t

  val hash_code : t -> int -> int
  (** [hash_code d code] is [Value.hash (decode d code)], served from a
      per-code cache — the decode path never rehashes a boxed value. *)
end

type t = private {
  arity : int;
  nrows : int;  (** logical row count *)
  cols : int array array;  (** per-attribute physical code columns *)
  sel : int array option;  (** logical row [i] is physical row [sel.(i)] *)
  sorted : bool;
      (** logical rows are in strictly increasing code-lexicographic
          order; order-preserving operators propagate it so
          {!to_relation} can skip sorting *)
}

val arity : t -> int
val nrows : t -> int
val empty : int -> t

val of_relation : Dict.t -> Relation.t -> t
(** Encode a relation's rows through the dictionary. *)

val to_relation : Dict.t -> t -> Relation.t
(** Decode back to a canonical relation; int-code sort when the
    dictionary is rank-{!Dict.ordered}, value sort otherwise. *)

val dense : t -> t
(** Resolve the selection vector (logical = physical afterwards). *)

val filter : (int -> bool) -> t -> t
(** Keep the logical rows satisfying the predicate (indices are logical
    row numbers); builds a selection vector, never copies columns. *)

val project : int array -> t -> t
(** Keep the listed columns in order (indices may repeat), then
    deduplicate. *)

val product : t -> t -> t

val equijoin : (int * int) list -> t -> t -> t
(** Hash equijoin over code columns: builds on the right operand, probes
    with the left; output is left-major like {!Relation.equijoin}. *)

val union : t -> t -> t
val diff : t -> t -> t
