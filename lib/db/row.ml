(* Array-backed tuples with a precomputed hash — the execution engine's
   row representation. The hash is combined left-to-right so equal rows
   always agree, and equality checks can reject on the hash before
   touching the cells. *)

type t = { cells : Value.t array; hash : int }

(* A multiplicative mix (FNV-style) over the per-value hashes. *)
let combine h v = (h * 0x01000193) lxor v
let combine_hash = combine
let seed_hash = 0x811c9dc5

let hash_cells cells =
  Array.fold_left (fun h v -> combine h (Value.hash v)) seed_hash cells land max_int

let of_array cells = { cells; hash = hash_cells cells }
let of_array_hashed cells hash = { cells; hash }
let of_list tup = of_array (Array.of_list tup)
let to_list r = Array.to_list r.cells
let cells r = r.cells
let hash r = r.hash
let arity r = Array.length r.cells
let get r i = r.cells.(i)

let equal a b =
  a.hash = b.hash
  &&
  let n = Array.length a.cells in
  n = Array.length b.cells
  &&
  let rec go i = i >= n || (Value.equal a.cells.(i) b.cells.(i) && go (i + 1)) in
  go 0

let compare a b =
  let n = Array.length a.cells and m = Array.length b.cells in
  let rec go i =
    if i >= n then if i >= m then 0 else -1
    else if i >= m then 1
    else
      let c = Value.compare a.cells.(i) b.cells.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let concat a b = of_array (Array.append a.cells b.cells)

let project cols r = of_array (Array.map (fun c -> r.cells.(c)) cols)

let pp fmt r =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       Value.pp)
    (Array.to_seq r.cells)
