type tuple = Value.t list

(* Rows are kept in a sorted, duplicate-free array (ascending
   Row.compare, i.e. lexicographic by Value.compare) — the same canonical
   order the original Tset representation exposed, but with O(1) column
   access, precomputed hashes and cache-friendly scans. *)
type t = { arity : int; rows : Row.t array }

let check_arity arity tup =
  if List.length tup <> arity then
    invalid_arg
      (Printf.sprintf "Relation: tuple of length %d in relation of arity %d"
         (List.length tup) arity)

let check_row_arity arity row =
  if Row.arity row <> arity then
    invalid_arg
      (Printf.sprintf "Relation: tuple of length %d in relation of arity %d"
         (Row.arity row) arity)

(* sort in place and drop duplicates; returns a fresh array when the
   input had duplicates, the sorted input otherwise *)
let sort_uniq_rows rows =
  Array.sort Row.compare rows;
  let n = Array.length rows in
  if n <= 1 then rows
  else begin
    let dupes = ref 0 in
    for i = 1 to n - 1 do
      if Row.equal rows.(i - 1) rows.(i) then incr dupes
    done;
    if !dupes = 0 then rows
    else begin
      let out = Array.make (n - !dupes) rows.(0) in
      let j = ref 0 in
      for i = 1 to n - 1 do
        if not (Row.equal rows.(i) out.(!j)) then begin
          incr j;
          out.(!j) <- rows.(i)
        end
      done;
      out
    end
  end

let of_rows ~arity rows =
  Array.iter (check_row_arity arity) rows;
  { arity; rows = sort_uniq_rows (Array.copy rows) }

(* internal: rows already sorted and duplicate-free *)
let of_sorted_rows ~arity rows = { arity; rows }

let make ~arity tuples =
  List.iter (check_arity arity) tuples;
  { arity; rows = sort_uniq_rows (Array.of_list (List.map Row.of_list tuples)) }

let empty ~arity = { arity; rows = [||] }
let arity r = r.arity
let rows r = r.rows
let tuples r = Array.to_list (Array.map Row.to_list r.rows)
let cardinal r = Array.length r.rows
let is_empty r = Array.length r.rows = 0

let mem_row row r =
  let lo = ref 0 and hi = ref (Array.length r.rows) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Row.compare row r.rows.(mid) in
    if c = 0 then found := true else if c < 0 then hi := mid else lo := mid + 1
  done;
  !found

let mem tup r = mem_row (Row.of_list tup) r

let add tup r =
  check_arity r.arity tup;
  let row = Row.of_list tup in
  (* binary search for the insertion point *)
  let lo = ref 0 and hi = ref (Array.length r.rows) in
  let dup = ref false in
  while (not !dup) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Row.compare row r.rows.(mid) in
    if c = 0 then dup := true else if c < 0 then hi := mid else lo := mid + 1
  done;
  if !dup then r
  else begin
    let n = Array.length r.rows in
    let out = Array.make (n + 1) row in
    Array.blit r.rows 0 out 0 !lo;
    Array.blit r.rows !lo out (!lo + 1) (n - !lo);
    { r with rows = out }
  end

let equal a b =
  a.arity = b.arity
  && Array.length a.rows = Array.length b.rows
  &&
  let n = Array.length a.rows in
  let rec go i = i >= n || (Row.equal a.rows.(i) b.rows.(i) && go (i + 1)) in
  go 0

let same_arity op a b =
  if a.arity <> b.arity then
    invalid_arg (Printf.sprintf "Relation.%s: arities %d and %d differ" op a.arity b.arity)

(* merge two sorted duplicate-free arrays, keeping rows according to
   [keep : in_a -> in_b -> bool] evaluated on each distinct row *)
let merge keep a b =
  let n = Array.length a and m = Array.length b in
  let buf = ref (Array.make (max 16 (n + m)) (Row.of_array [||])) in
  let len = ref 0 in
  let push row =
    if !len = Array.length !buf then begin
      let bigger = Array.make (2 * !len) row in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- row;
    incr len
  in
  let i = ref 0 and j = ref 0 in
  while !i < n || !j < m do
    if !i >= n then begin
      if keep false true then push b.(!j);
      incr j
    end
    else if !j >= m then begin
      if keep true false then push a.(!i);
      incr i
    end
    else
      let c = Row.compare a.(!i) b.(!j) in
      if c < 0 then begin
        if keep true false then push a.(!i);
        incr i
      end
      else if c > 0 then begin
        if keep false true then push b.(!j);
        incr j
      end
      else begin
        if keep true true then push a.(!i);
        incr i;
        incr j
      end
  done;
  Array.sub !buf 0 !len

let union a b =
  same_arity "union" a b;
  { a with rows = merge (fun _ _ -> true) a.rows b.rows }

let diff a b =
  same_arity "diff" a b;
  { a with rows = merge (fun ina inb -> ina && not inb) a.rows b.rows }

let inter a b =
  same_arity "inter" a b;
  { a with rows = merge (fun ina inb -> ina && inb) a.rows b.rows }

let product a b =
  (* both sides sorted and unique, so the left-major concatenation is
     already in canonical order with no duplicates *)
  let n = Array.length a.rows and m = Array.length b.rows in
  if n = 0 || m = 0 then empty ~arity:(a.arity + b.arity)
  else begin
    let out = Array.make (n * m) a.rows.(0) in
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        out.((i * m) + j) <- Row.concat a.rows.(i) b.rows.(j)
      done
    done;
    of_sorted_rows ~arity:(a.arity + b.arity) out
  end

(* Hash equijoin: [pairs] are (left column, right column) equalities. The
   right side is loaded into a hash table keyed by its key columns; the
   left side probes. Output rows are left ++ right, in canonical order
   (left-major, and each bucket preserves the right side's order). *)
let equijoin pairs a b =
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= a.arity || j < 0 || j >= b.arity then
        invalid_arg
          (Printf.sprintf "Relation.equijoin: columns (%d,%d) of arities (%d,%d)" i j a.arity
             b.arity))
    pairs;
  let arity = a.arity + b.arity in
  if is_empty a || is_empty b then empty ~arity
  else begin
    let lcols = Array.of_list (List.map fst pairs) in
    let rcols = Array.of_list (List.map snd pairs) in
    let table = Hashtbl.create (2 * Array.length b.rows) in
    (* bucket lists are built back-to-front so each ends up in row order *)
    for j = Array.length b.rows - 1 downto 0 do
      let row = b.rows.(j) in
      let key = Row.project rcols row in
      let bucket = try Hashtbl.find table key with Not_found -> [] in
      Hashtbl.replace table key (row :: bucket)
    done;
    let buf = ref (Array.make 16 a.rows.(0)) in
    let len = ref 0 in
    let push row =
      if !len = Array.length !buf then begin
        let bigger = Array.make (2 * !len) row in
        Array.blit !buf 0 bigger 0 !len;
        buf := bigger
      end;
      !buf.(!len) <- row;
      incr len
    in
    Array.iter
      (fun la ->
        let key = Row.project lcols la in
        match Hashtbl.find_opt table key with
        | None -> ()
        | Some bucket -> List.iter (fun rb -> push (Row.concat la rb)) bucket)
      a.rows;
    of_sorted_rows ~arity (Array.sub !buf 0 !len)
  end

let filter p r =
  (* filtering preserves order and uniqueness *)
  let kept = Array.of_seq (Seq.filter (fun row -> p (Row.to_list row)) (Array.to_seq r.rows)) in
  { r with rows = kept }

let filter_rows p r =
  let kept = Array.of_seq (Seq.filter p (Array.to_seq r.rows)) in
  { r with rows = kept }

let map_project cols r =
  List.iter
    (fun c ->
      if c < 0 || c >= r.arity then
        invalid_arg (Printf.sprintf "Relation.map_project: column %d of arity %d" c r.arity))
    cols;
  let cols = Array.of_list cols in
  { arity = Array.length cols; rows = sort_uniq_rows (Array.map (Row.project cols) r.rows) }

let fold f r acc = Array.fold_left (fun acc row -> f (Row.to_list row) acc) acc r.rows
let iter f r = Array.iter (fun row -> f (Row.to_list row)) r.rows
let exists p r = Array.exists (fun row -> p (Row.to_list row)) r.rows
let for_all p r = Array.for_all (fun row -> p (Row.to_list row)) r.rows

let values r =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc v -> v :: acc) acc (Row.cells row))
    [] r.rows
  |> List.sort_uniq Value.compare

let of_values vs = make ~arity:1 (List.map (fun v -> [ v ]) vs)

let pp fmt r =
  Format.fprintf fmt "{";
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf fmt ", ";
      Row.pp fmt row)
    r.rows;
  Format.fprintf fmt "}"
