(** A small text format for database states, shared by the CLI and tests.

    Relations: ["NAME/ARITY=v1,v2;v1,v2;..."] — semicolon-separated rows of
    comma-separated values; an empty body is the empty relation. Constants:
    ["NAME=VALUE"]. Values consisting solely of decimal digits are numbers;
    everything else is a string (so trace-alphabet words pass through
    verbatim). *)

val value_of_string : string -> Value.t

val parse_relation : string -> (string * int * Relation.t, string) result
(** One ["NAME/ARITY=..."] spec. *)

val parse_constant : string -> (string * Value.t, string) result
(** One ["NAME=VALUE"] spec. *)

val parse_state :
  relations:string list -> constants:string list -> (State.t, string) result
(** Builds the scheme from the specs themselves. *)

val load_state : string -> (State.t, string) result
(** [load_state path] reads one spec per line — a ['/'] before the first
    ['='] marks a relation line, anything else is a constant; blank
    lines and ['#'] comments are skipped — and builds the state via
    {!parse_state}.  The file format behind [fq serve]'s hot reload
    ([fq ctl ADDR reload FILE] / SIGHUP). *)

val relation_to_string : string -> Relation.t -> string
(** Inverse of {!parse_relation} for string/int-valued relations. *)

val state_to_strings : State.t -> string list * string list
(** [(relation specs, constant specs)] — round-trips through
    {!parse_state}. *)
