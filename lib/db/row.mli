(** Array-backed tuples with a precomputed hash.

    Rows are the execution engine's internal tuple representation: column
    access is O(1) (unlike the [Value.t list] tuples of the public
    {!Relation} API) and the hash computed at construction makes rows
    cheap hash-table keys for hash joins and duplicate elimination. *)

type t

val of_list : Value.t list -> t
val of_array : Value.t array -> t
(** Takes ownership of the array; do not mutate it afterwards. *)

val of_array_hashed : Value.t array -> int -> t
(** [of_array_hashed cells h] takes ownership of [cells] and trusts [h]
    to equal [hash (of_array cells)] — for callers that combine cached
    per-value hashes (the columnar engine's dictionary) instead of
    rehashing boxed values. Unchecked. *)

val combine_hash : int -> int -> int
(** The row-hash accumulator: [of_array cells] hashes as
    [fold combine_hash seed_hash (map Value.hash cells) land max_int]. *)

val seed_hash : int

val to_list : t -> Value.t list
val cells : t -> Value.t array
(** The underlying array; treat as read-only. *)

val hash : t -> int
(** Precomputed at construction; equal rows have equal hashes. *)

val arity : t -> int
val get : t -> int -> Value.t

val equal : t -> t -> bool
(** Rejects on hash mismatch before comparing cells. *)

val compare : t -> t -> int
(** Lexicographic by {!Value.compare} — the canonical relation order. *)

val concat : t -> t -> t
val project : int array -> t -> t
(** [project cols r] keeps the listed columns, in order (repeats allowed). *)

val pp : Format.formatter -> t -> unit
