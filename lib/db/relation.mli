(** Finite relations: sets of same-arity tuples of {!Value.t}.

    Relations are persistent and kept in a canonical sorted order, so
    equality is structural and printing is deterministic. The arity is
    carried explicitly; the nullary relations [{()}] and [{}] (the two
    0-ary relations, "true" and "false") are representable, as relational
    algebra requires.

    Internally tuples are array-backed {!Row}s with precomputed hashes,
    stored in a sorted duplicate-free array: set operations are linear
    merges, column access is O(1), and {!equijoin} runs as a hash join.
    The list-based [tuple] API is preserved on top. *)

type tuple = Value.t list

type t

val make : arity:int -> tuple list -> t
(** @raise Invalid_argument when a tuple's length differs from [arity]. *)

val empty : arity:int -> t
val arity : t -> int
val tuples : t -> tuple list
(** In canonical (sorted) order. *)

val cardinal : t -> int
val is_empty : t -> bool
val mem : tuple -> t -> bool
val add : tuple -> t -> t
val equal : t -> t -> bool

val union : t -> t -> t
(** @raise Invalid_argument on arity mismatch (also [diff], [inter]). *)

val diff : t -> t -> t
val inter : t -> t -> t

val product : t -> t -> t
(** Cartesian product; arities add. *)

val equijoin : (int * int) list -> t -> t -> t
(** [equijoin pairs a b] is the hash equijoin: the tuples [ta ++ tb] with
    [ta.(i) = tb.(j)] for every [(i, j)] in [pairs]. Equivalent to
    selecting those equalities over [product a b], but executed by
    hashing the (smaller) right side on its key columns and probing with
    the left — O(|a| + |b| + output) expected.
    @raise Invalid_argument on an out-of-range column. *)

val filter : (tuple -> bool) -> t -> t
(** Keeps the tuples satisfying the predicate. *)

val filter_rows : (Row.t -> bool) -> t -> t
(** Like {!filter} but over the array-backed rows, avoiding the
    per-tuple list conversion on hot paths. *)

val map_project : int list -> t -> t
(** [map_project [i1; ...; ik] r] keeps columns [i1..ik] (0-based), in the
    given order, deduplicating the result. Column indices may repeat.
    @raise Invalid_argument on an out-of-range column. *)

val fold : (tuple -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (tuple -> unit) -> t -> unit
val exists : (tuple -> bool) -> t -> bool
val for_all : (tuple -> bool) -> t -> bool
val values : t -> Value.t list
(** All values occurring in any tuple, deduplicated and sorted. *)

val of_values : Value.t list -> t
(** Unary relation from a value list. *)

val rows : t -> Row.t array
(** The underlying rows, sorted and duplicate-free; treat as read-only. *)

val of_rows : arity:int -> Row.t array -> t
(** Builds a relation from arbitrary rows (sorts and deduplicates; the
    input array is not mutated).
    @raise Invalid_argument when a row's arity differs from [arity]. *)

val mem_row : Row.t -> t -> bool
(** Binary search over the sorted rows. *)

val of_sorted_rows : arity:int -> Row.t array -> t
(** Adopts an array the caller guarantees is already sorted ascending by
    [Row.compare] and duplicate-free — the engines' fast path out of an
    order-preserving pipeline (no check is performed; a violated
    precondition breaks {!equal} and {!mem}). *)

val pp : Format.formatter -> t -> unit
