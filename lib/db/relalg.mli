(** Unnamed (positional) relational algebra over {!Relation}.

    Columns are addressed by 0-based position. This is the compilation
    target of the safe-range relational calculus (see
    {!Fq_safety.Algebra_translate}); an algebra plan evaluates in time
    polynomial in the database, in contrast to the generic enumeration
    evaluator of Section 1.1.

    Selections may invoke {e domain} predicates (such as [<] over the
    naturals) through the [domain_pred] callback of {!eval}; the algebra
    itself stays independent of any particular domain. *)

type arg =
  | Col of int
  | Const of Value.t

type cond =
  | Eq of arg * arg
  | Domain_pred of string * arg list  (** e.g. [Domain_pred ("<", [Col 0; Const 3])] *)
  | Not of cond
  | And_c of cond * cond
  | Or_c of cond * cond

type t =
  | Rel of string  (** a scheme relation *)
  | Lit of Relation.t  (** a literal (e.g. the active domain as a unary relation) *)
  | Select of cond * t
  | Project of int list * t  (** keep the listed columns, in order *)
  | Product of t * t
  | Join of (int * int) list * t * t
      (** [Join (pairs, p, q)] is the equijoin: the tuples of
          [Product (p, q)] whose column [i] (of [p]) equals column [j]
          (of [q]) for every [(i, j)] in [pairs]. Semantically equal to
          the corresponding [Select] over [Product]; executed as a hash
          join ({!Relation.equijoin}). *)
  | Union of t * t
  | Diff of t * t

val arity_check : schema:Schema.t -> t -> (int, string) result
(** Static arity of the plan, or an error describing the first
    ill-formed node (unknown relation, column out of range, arity
    mismatch in [Union]/[Diff]). *)

type engine =
  | Row_engine  (** tuple-at-a-time over sorted {!Row.t} arrays (the PR 1 engine) *)
  | Columnar_engine  (** batch-at-a-time over dictionary-encoded {!Columnar} batches *)

val default_engine : engine ref
(** Engine used when {!eval} gets no explicit [?engine]; [Columnar_engine]
    unless overridden (e.g. by the CLI's [--engine=row]). *)

val eval :
  state:State.t ->
  ?budget:Fq_core.Budget.t ->
  ?engine:engine ->
  ?domain_pred:(string -> Value.t list -> bool) ->
  t ->
  Relation.t
(** Evaluates a plan bottom-up. [domain_pred] decides domain predicate
    atoms in selections (defaults to rejecting every such atom with
    [Invalid_argument]). Every operator charges one work unit plus the
    cardinality of its result to [budget] — or, when no explicit budget is
    given, to the ambient {!Fq_core.Budget} if one is installed — and an
    explicit budget's cardinality cap applies to every intermediate.

    Both engines produce the same canonical {!Relation}, settle each
    operator at the same fault site ([relalg.node]) in the same order and
    charge identical amounts (one unit plus the operator's output
    cardinality — per batch in the columnar engine), so verdicts under a
    shared budget and deterministic fault schedules agree across engines
    (property-tested in [test/test_columnar.ml]).
    @raise Invalid_argument on an ill-formed plan (see {!arity_check}).
    @raise Fq_core.Budget.Exhausted when the governing budget runs dry;
    front-ends recover with {!Fq_core.Budget.guard}. *)

val fingerprint : t -> string
(** Stable 8-hex-digit structural digest of a plan, computed bottom-up
    over operators, conditions and literal contents. While a telemetry
    recording is active, {!eval} records each node's output cardinality
    into the histogram [relalg.node_card.<fingerprint subplan>] — keyed by
    the {e post-optimization} node, which is what the optimizer's stats
    profile matches against. *)

val card_metric : string
(** ["relalg.node_card"] — the aggregate per-node output-cardinality
    histogram. *)

val node_metric : string -> string
(** [node_metric fp] is the histogram name attributing output cardinality
    to the plan node with fingerprint [fp]. *)

val size : t -> int
(** Number of operator nodes, for benchmarks and tests. *)

val pp : Format.formatter -> t -> unit
