(** Unnamed (positional) relational algebra over {!Relation}.

    Columns are addressed by 0-based position. This is the compilation
    target of the safe-range relational calculus (see
    {!Fq_safety.Algebra_translate}); an algebra plan evaluates in time
    polynomial in the database, in contrast to the generic enumeration
    evaluator of Section 1.1.

    Selections may invoke {e domain} predicates (such as [<] over the
    naturals) through the [domain_pred] callback of {!eval}; the algebra
    itself stays independent of any particular domain. *)

type arg =
  | Col of int
  | Const of Value.t

type cond =
  | Eq of arg * arg
  | Domain_pred of string * arg list  (** e.g. [Domain_pred ("<", [Col 0; Const 3])] *)
  | Not of cond
  | And_c of cond * cond
  | Or_c of cond * cond

type t =
  | Rel of string  (** a scheme relation *)
  | Lit of Relation.t  (** a literal (e.g. the active domain as a unary relation) *)
  | Select of cond * t
  | Project of int list * t  (** keep the listed columns, in order *)
  | Product of t * t
  | Join of (int * int) list * t * t
      (** [Join (pairs, p, q)] is the equijoin: the tuples of
          [Product (p, q)] whose column [i] (of [p]) equals column [j]
          (of [q]) for every [(i, j)] in [pairs]. Semantically equal to
          the corresponding [Select] over [Product]; executed as a hash
          join ({!Relation.equijoin}). *)
  | Union of t * t
  | Diff of t * t

val arity_check : schema:Schema.t -> t -> (int, string) result
(** Static arity of the plan, or an error describing the first
    ill-formed node (unknown relation, column out of range, arity
    mismatch in [Union]/[Diff]). *)

val eval :
  state:State.t ->
  ?budget:Fq_core.Budget.t ->
  ?domain_pred:(string -> Value.t list -> bool) ->
  t ->
  Relation.t
(** Evaluates a plan bottom-up. [domain_pred] decides domain predicate
    atoms in selections (defaults to rejecting every such atom with
    [Invalid_argument]). Every operator charges one work unit plus the
    cardinality of its result to [budget] — or, when no explicit budget is
    given, to the ambient {!Fq_core.Budget} if one is installed — and an
    explicit budget's cardinality cap applies to every intermediate.
    @raise Invalid_argument on an ill-formed plan (see {!arity_check}).
    @raise Fq_core.Budget.Exhausted when the governing budget runs dry;
    front-ends recover with {!Fq_core.Budget.guard}. *)

val size : t -> int
(** Number of operator nodes, for benchmarks and tests. *)

val pp : Format.formatter -> t -> unit
