(* Plan optimizer for the relational algebra.

   Three cooperating rewrites, all semantics-preserving on set semantics
   (QCheck-verified in test/test_optimizer.ml):

   - selection pushdown: conjuncts of a [Select] sink toward the leaves —
     through [Project] (column remapping), into both sides of [Union] and
     [Diff], and onto the side of a [Product]/[Join] they mention;
   - join introduction: an equality [Col i = Col j] straddling a
     [Product] turns the product into a hash [Join] (additional
     straddling equalities extend an existing join's key);
   - projection pushdown: a [Project] narrows the operands of products,
     joins and selections to the columns actually consumed above
     (difference blocks pushdown: π(A − B) ≠ πA − πB);

   plus pruning of trivial nodes (identity projections, empty and
   nullary-true literals, nested selects/projects). *)

open Relalg

exception Unknown_arity of string

let arity ~arity_of plan =
  let rec go = function
    | Rel name -> (
      match arity_of name with
      | Some a -> a
      | None -> raise (Unknown_arity name))
    | Lit r -> Relation.arity r
    | Select (_, p) -> go p
    | Project (cols, _) -> List.length cols
    | Product (p, q) | Join (_, p, q) -> go p + go q
    | Union (p, _) | Diff (p, _) -> go p
  in
  go plan

(* ------------------------------------------------------------------ *)
(* Condition utilities                                                  *)
(* ------------------------------------------------------------------ *)

let rec arg_cols = function Col i -> [ i ] | Const _ -> []

and cond_cols = function
  | Eq (a, b) -> arg_cols a @ arg_cols b
  | Domain_pred (_, args) -> List.concat_map arg_cols args
  | Not c -> cond_cols c
  | And_c (a, b) | Or_c (a, b) -> cond_cols a @ cond_cols b

let remap_arg f = function Col i -> Col (f i) | Const v -> Const v

let rec remap_cond f = function
  | Eq (a, b) -> Eq (remap_arg f a, remap_arg f b)
  | Domain_pred (p, args) -> Domain_pred (p, List.map (remap_arg f) args)
  | Not c -> Not (remap_cond f c)
  | And_c (a, b) -> And_c (remap_cond f a, remap_cond f b)
  | Or_c (a, b) -> Or_c (remap_cond f a, remap_cond f b)

let rec cond_conjuncts = function
  | And_c (a, b) -> cond_conjuncts a @ cond_conjuncts b
  | c -> [ c ]

let conj_cond = function
  | [] -> None
  | c :: rest -> Some (List.fold_left (fun acc c -> And_c (acc, c)) c rest)

(* wrap [p] in a selection over the remaining conjuncts, if any *)
let reselect conds p =
  match conj_cond conds with None -> p | Some c -> Select (c, p)

let nth_col cols k =
  match List.nth_opt cols k with
  | Some c -> c
  | None -> invalid_arg "Optimizer: condition column out of projection range"

let pos_in needed k =
  let rec go i = function
    | [] -> invalid_arg "Optimizer: missing needed column"
    | c :: _ when c = k -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 needed

let identity_cols n = List.init n (fun i -> i)

(* ------------------------------------------------------------------ *)
(* The rewrite                                                          *)
(* ------------------------------------------------------------------ *)

let optimize_exn ~arity_of plan =
  let arity p = arity ~arity_of p in
  (* push a conjunction of selection conditions down into [p] *)
  let rec push_select conds p =
    match conds with
    | [] -> opt p
    | _ -> (
      match p with
      | Select (c, q) -> push_select (conds @ cond_conjuncts c) q
      | Project (cols, q) ->
        (* σ_c (π_cols q) = π_cols (σ_{c[cols]} q) *)
        let remapped = List.map (remap_cond (nth_col cols)) conds in
        push_project cols (push_select remapped q)
      | Product (q, r) | Join (_, q, r) -> (
        let na = arity q in
        let classify c =
          let cs = cond_cols c in
          if List.for_all (fun i -> i < na) cs then `Left c
          else if List.for_all (fun i -> i >= na) cs then `Right (remap_cond (fun i -> i - na) c)
          else
            match c with
            | Eq (Col i, Col j) when i < na && j >= na -> `Pair (i, j - na)
            | Eq (Col j, Col i) when i < na && j >= na -> `Pair (i, j - na)
            | c -> `Rest c
        in
        let classified = List.map classify conds in
        let left = List.filter_map (function `Left c -> Some c | _ -> None) classified in
        let right = List.filter_map (function `Right c -> Some c | _ -> None) classified in
        let pairs = List.filter_map (function `Pair ij -> Some ij | _ -> None) classified in
        let rest = List.filter_map (function `Rest c -> Some c | _ -> None) classified in
        let q' = push_select left q and r' = push_select right r in
        match (p, pairs) with
        | Product _, [] -> reselect rest (Product (q', r'))
        | Product _, _ -> reselect rest (Join (pairs, q', r'))
        | Join (existing, _, _), _ -> reselect rest (Join (existing @ pairs, q', r'))
        | _ -> assert false)
      | Union (q, r) -> Union (push_select conds q, push_select conds r)
      | Diff (q, r) ->
        (* σ(A − B) = σA − σB *)
        Diff (push_select conds q, push_select conds r)
      | Rel _ | Lit _ -> reselect conds (opt p))
  (* push a projection down into [p]; the result computes π_cols p *)
  and push_project cols p =
    let default () =
      let p' = opt p in
      if cols = identity_cols (arity p') then p' else Project (cols, p')
    in
    match p with
    | Project (cols', q) -> push_project (List.map (nth_col cols') cols) q
    | Select (c, q) ->
      let needed = List.sort_uniq compare (cols @ cond_cols c) in
      if List.length needed < arity q then
        let q' = push_project needed q in
        let inner = Select (remap_cond (pos_in needed) c, q') in
        let outer = List.map (pos_in needed) cols in
        if outer = identity_cols (List.length needed) then inner else Project (outer, inner)
      else default ()
    | Product (q, r) | Join (_, q, r) -> (
      let na = arity q and nb = arity r in
      let pairs = match p with Join (pairs, _, _) -> pairs | _ -> [] in
      let needed_left =
        List.sort_uniq compare (List.filter (fun i -> i < na) cols @ List.map fst pairs)
      in
      let needed_right =
        List.sort_uniq compare
          (List.map (fun i -> i - na) (List.filter (fun i -> i >= na) cols)
          @ List.map snd pairs)
      in
      if List.length needed_left < na || List.length needed_right < nb then begin
        let q' = push_project needed_left q and r' = push_project needed_right r in
        let remap i =
          if i < na then pos_in needed_left i
          else List.length needed_left + pos_in needed_right (i - na)
        in
        let pairs' =
          List.map (fun (i, j) -> (pos_in needed_left i, pos_in needed_right j)) pairs
        in
        let core =
          match p with Product _ -> Product (q', r') | _ -> Join (pairs', q', r')
        in
        let outer = List.map remap cols in
        if outer = identity_cols (List.length needed_left + List.length needed_right) then
          core
        else Project (outer, core)
      end
      else default ())
    | Union (q, r) -> Union (push_project cols q, push_project cols r)
    | Diff _ | Rel _ | Lit _ -> default ()
  and opt p =
    match p with
    | Rel _ | Lit _ -> p
    | Select (c, q) -> push_select (cond_conjuncts c) q
    | Project (cols, q) -> push_project cols q
    | Product (q, r) -> Product (opt q, opt r)
    | Join (pairs, q, r) -> Join (pairs, opt q, opt r)
    | Union (q, r) -> Union (opt q, opt r)
    | Diff (q, r) -> Diff (opt q, opt r)
  in
  (* prune trivial nodes, bottom-up *)
  let is_empty_lit = function Lit r -> Relation.is_empty r | _ -> false in
  let is_true0 = function
    | Lit r -> Relation.arity r = 0 && not (Relation.is_empty r)
    | _ -> false
  in
  let rec simplify p =
    match p with
    | Rel _ | Lit _ -> p
    | Select (c, q) ->
      let q' = simplify q in
      if is_empty_lit q' then q' else Select (c, q')
    | Project (cols, q) ->
      let q' = simplify q in
      if is_empty_lit q' then Lit (Relation.empty ~arity:(List.length cols))
      else if cols = identity_cols (arity q') then q'
      else Project (cols, q')
    | Product (q, r) ->
      let q' = simplify q and r' = simplify r in
      if is_empty_lit q' || is_empty_lit r' then
        Lit (Relation.empty ~arity:(arity q' + arity r'))
      else if is_true0 q' then r'
      else if is_true0 r' then q'
      else Product (q', r')
    | Join (pairs, q, r) ->
      let q' = simplify q and r' = simplify r in
      if is_empty_lit q' || is_empty_lit r' then
        Lit (Relation.empty ~arity:(arity q' + arity r'))
      else if pairs = [] && is_true0 q' then r'
      else if pairs = [] && is_true0 r' then q'
      else Join (pairs, q', r')
    | Union (q, r) ->
      let q' = simplify q and r' = simplify r in
      if is_empty_lit q' then r' else if is_empty_lit r' then q' else Union (q', r')
    | Diff (q, r) ->
      let q' = simplify q and r' = simplify r in
      if is_empty_lit q' || is_empty_lit r' then q' else Diff (q', r')
  in
  (* two rounds: pruning can expose further pushdown and vice versa *)
  simplify (opt (simplify (opt plan)))

(* ------------------------------------------------------------------ *)
(* Cost model                                                           *)
(* ------------------------------------------------------------------ *)

module Stats = struct
  type t = {
    card_of : string -> float option;  (* base relation cardinality *)
    distinct_of : string -> int -> float option;  (* per-column distinct values *)
    profile : (string, float) Hashtbl.t;  (* plan fingerprint -> observed card *)
  }

  let none =
    { card_of = (fun _ -> None);
      distinct_of = (fun _ _ -> None);
      profile = Hashtbl.create 1 }

  let of_state state =
    (* One Stats value is shared across a whole batch run (and across the
       requests of a serve session), so the memo tables are consulted and
       filled under a mutex; the distinct count itself is computed outside
       the lock — two workers racing on the same cold column both count,
       both store the same number. *)
    let lock = Mutex.create () in
    let locked f =
      Mutex.lock lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
    in
    let cards = Hashtbl.create 8 and distincts = Hashtbl.create 8 in
    let card_of name =
      match locked (fun () -> Hashtbl.find_opt cards name) with
      | Some c -> c
      | None ->
        let c =
          match State.relation state name with
          | r -> Some (float_of_int (Array.length (Relation.rows r)))
          | exception Not_found -> None
        in
        locked (fun () -> Hashtbl.replace cards name c);
        c
    in
    let distinct_of name col =
      match locked (fun () -> Hashtbl.find_opt distincts (name, col)) with
      | Some d -> d
      | None ->
        let d =
          match State.relation state name with
          | exception Not_found -> None
          | r when col < 0 || col >= Relation.arity r -> None
          | r ->
            let seen = Hashtbl.create 64 in
            Array.iter (fun row -> Hashtbl.replace seen (Row.get row col) ()) (Relation.rows r);
            Some (float_of_int (Hashtbl.length seen))
        in
        locked (fun () -> Hashtbl.replace distincts (name, col) d);
        d
    in
    { card_of; distinct_of; profile = Hashtbl.create 8 }

  let with_profile entries t =
    let profile = Hashtbl.copy t.profile in
    List.iter (fun (fp, card) -> Hashtbl.replace profile fp card) entries;
    { t with profile }

  let of_profile entries = with_profile entries none
end

(* cardinality assumed for a relation the stats know nothing about *)
let default_leaf_card = 100.

let estimate (s : Stats.t) ~arity_of plan =
  let arity p = arity ~arity_of p in
  let rec distinct p c =
    match p with
    | Rel name -> s.Stats.distinct_of name c
    | Lit r ->
      if c < 0 || c >= Relation.arity r then None
      else begin
        let seen = Hashtbl.create 16 in
        Array.iter (fun row -> Hashtbl.replace seen (Row.get row c) ()) (Relation.rows r);
        Some (float_of_int (Hashtbl.length seen))
      end
    | Select (_, q) -> distinct q c
    | Project (cols, q) -> (
      match List.nth_opt cols c with Some c' -> distinct q c' | None -> None)
    | Product (q, r) | Join (_, q, r) ->
      let na = arity q in
      if c < na then distinct q c else distinct r (c - na)
    | Union (q, r) -> (
      match (distinct q c, distinct r c) with
      | Some a, Some b -> Some (a +. b)
      | _ -> None)
    | Diff (q, _) -> distinct q c
  and selectivity p = function
    | Eq (Col i, Const _) | Eq (Const _, Col i) -> (
      (* a point lookup keeps one value out of the column's distincts *)
      match distinct p i with Some d when d > 0. -> 1. /. d | _ -> 0.1)
    | Eq _ -> 0.1
    | Domain_pred _ -> 0.5
    | Not c -> Float.max 0.05 (1. -. selectivity p c)
    | And_c (a, b) -> selectivity p a *. selectivity p b
    | Or_c (a, b) -> Float.min 1. (selectivity p a +. selectivity p b)
  and est p =
    (* an observed cardinality for this exact subplan trumps the formula *)
    match Hashtbl.find_opt s.Stats.profile (fingerprint p) with
    | Some observed -> observed
    | None -> (
      match p with
      | Rel name -> (
        match s.Stats.card_of name with Some c -> c | None -> default_leaf_card)
      | Lit r -> float_of_int (Array.length (Relation.rows r))
      | Select (c, q) -> selectivity q c *. est q
      | Project (_, q) -> est q
      | Product (q, r) -> est q *. est r
      | Join (pairs, q, r) ->
        (* per key pair, divide by the larger distinct count (classical
           containment-of-values assumption) *)
        let base = est q *. est r in
        List.fold_left
          (fun acc (i, j) ->
            let d =
              match (distinct q i, distinct r j) with
              | Some a, Some b -> Float.max a b
              | Some a, None | None, Some a -> a
              | None, None -> Float.max 1. (Float.max (est q) (est r) /. 10.)
            in
            acc /. Float.max 1. d)
          base pairs
      | Union (q, r) -> est q +. est r
      | Diff (q, _) -> est q)
  in
  est plan

(* ------------------------------------------------------------------ *)
(* Cost-based passes: join ordering and predicate placement             *)
(* ------------------------------------------------------------------ *)

(* Flatten a maximal Join/Product spine into its factors (in original
   column order) and the equijoin predicates over the concatenated
   columns.  Every predicate connects two distinct factors. *)
let flatten_spine ~arity_of plan =
  let rec go p =
    match p with
    | Product (q, r) | Join (_, q, r) ->
      let lq, pq, na = go q in
      let lr, pr, nb = go r in
      let pairs = match p with Join (pairs, _, _) -> pairs | _ -> [] in
      ( lq @ lr,
        pq
        @ List.map (fun (i, j) -> (i + na, j + na)) pr
        @ List.map (fun (i, j) -> (i, j + na)) pairs,
        na + nb )
    | _ -> ([ p ], [], arity ~arity_of p)
  in
  go plan

(* estimated cardinality summed over a spine's internal nodes — the cost
   a given join order pays in intermediate results *)
let rec spine_cost est p =
  match p with
  | Product (q, r) | Join (_, q, r) -> est p +. spine_cost est q +. spine_cost est r
  | _ -> 0.

(* Greedy left-deep reorder of one Join/Product spine.  Both engines
   build the hash table on the {e right} operand and probe with the
   left, so the accumulated prefix stays on the left (probe) and each
   added factor — picked to minimize the next intermediate — becomes a
   build side.  The original column order is restored by a final
   permutation projection (which never needs dedup).  The reordered plan
   is kept only when its estimated intermediate volume beats the
   original spine's by a margin, so noisy stats do not churn plans. *)
let reorder_spine stats ~arity_of recurse plan =
  let leaves, preds, total = flatten_spine ~arity_of plan in
  match leaves with
  | [] | [ _ ] -> plan
  | _ ->
    let est p = estimate stats ~arity_of p in
    let leaves = Array.of_list (List.map recurse leaves) in
    let nl = Array.length leaves in
    let offs = Array.make nl 0 and ars = Array.make nl 0 in
    let off = ref 0 in
    Array.iteri
      (fun i l ->
        offs.(i) <- !off;
        let a = arity ~arity_of l in
        ars.(i) <- a;
        off := !off + a)
      leaves;
    let leaf_est = Array.map est leaves in
    (* start from the largest factor: it is everyone's probe side *)
    let start = ref 0 in
    for i = 1 to nl - 1 do
      if leaf_est.(i) > leaf_est.(!start) then start := i
    done;
    let used = Array.make nl false in
    used.(!start) <- true;
    let colpos = Array.make total (-1) in
    for c = 0 to ars.(!start) - 1 do
      colpos.(offs.(!start) + c) <- c
    done;
    let current = ref leaves.(!start) in
    let width = ref ars.(!start) in
    let remaining = ref preds in
    let cost = ref 0. in
    let in_leaf j g = g >= offs.(j) && g < offs.(j) + ars.(j) in
    for _ = 2 to nl do
      let best = ref (-1) and best_plan = ref !current and best_score = ref infinity in
      let best_pairs_used = ref [] in
      for j = 0 to nl - 1 do
        if not used.(j) then begin
          let connecting, _ =
            List.partition
              (fun (g1, g2) ->
                (colpos.(g1) >= 0 && in_leaf j g2) || (colpos.(g2) >= 0 && in_leaf j g1))
              !remaining
          in
          let local =
            List.map
              (fun (g1, g2) ->
                if colpos.(g1) >= 0 then (colpos.(g1), g2 - offs.(j))
                else (colpos.(g2), g1 - offs.(j)))
              connecting
          in
          let candidate =
            if local = [] then Product (!current, leaves.(j))
            else Join (local, !current, leaves.(j))
          in
          let score = est candidate in
          if
            !best < 0 || score < !best_score
            || (score = !best_score && leaf_est.(j) < leaf_est.(!best))
          then begin
            best := j;
            best_plan := candidate;
            best_score := score;
            best_pairs_used := connecting
          end
        end
      done;
      let j = !best in
      used.(j) <- true;
      for c = 0 to ars.(j) - 1 do
        colpos.(offs.(j) + c) <- !width + c
      done;
      width := !width + ars.(j);
      current := !best_plan;
      remaining := List.filter (fun pr -> not (List.memq pr !best_pairs_used)) !remaining;
      cost := !cost +. !best_score
    done;
    let reordered =
      let outer = List.init total (fun g -> colpos.(g)) in
      if outer = identity_cols total then !current else Project (outer, !current)
    in
    if !cost < 0.95 *. spine_cost est plan then reordered else plan

(* conditions whose every atom calls out to a domain predicate: these
   decode values and cross the domain callback per row, so where they
   run matters *)
let rec domain_only = function
  | Domain_pred _ -> true
  | Eq _ -> false
  | Not c -> domain_only c
  | And_c (a, b) | Or_c (a, b) -> domain_only a && domain_only b

(* Pushdown-vs-materialize: the rewrite pipeline sinks every selection
   to the leaves, but a domain-predicate filter below a {e selective}
   join then pays one callback per base row.  When the stats say the
   join output is much smaller than the filtered side, hoist the filter
   above the join and let the join shrink the rows first. *)
let hoist_domain_preds stats ~arity_of plan =
  let est p = estimate stats ~arity_of p in
  let rec go p =
    match p with
    | Rel _ | Lit _ -> p
    | Select (c, q) -> Select (c, go q)
    | Project (cols, q) -> Project (cols, go q)
    | Product (q, r) -> Product (go q, go r)
    | Union (q, r) -> Union (go q, go r)
    | Diff (q, r) -> Diff (go q, go r)
    | Join (pairs, q, r) -> (
      let q = go q and r = go r in
      let joined =
        match q with
        | Select (c, q') when domain_only c && est (Join (pairs, q', r)) < 0.5 *. est q' ->
          Select (c, Join (pairs, q', r))
        | _ -> Join (pairs, q, r)
      in
      match joined with
      | Join (pairs, q, Select (c, r'))
        when domain_only c && est (Join (pairs, q, r')) < 0.5 *. est r' ->
        let na = arity ~arity_of q in
        Select (remap_cond (fun i -> i + na) c, Join (pairs, q, r'))
      | p -> p)
  in
  go plan

let cost_based_passes stats ~arity_of plan =
  let rec reorder p =
    match p with
    | Product _ | Join _ -> reorder_spine stats ~arity_of reorder p
    | Rel _ | Lit _ -> p
    | Select (c, q) -> Select (c, reorder q)
    | Project (cols, q) -> Project (cols, reorder q)
    | Union (q, r) -> Union (reorder q, reorder r)
    | Diff (q, r) -> Diff (reorder q, reorder r)
  in
  hoist_domain_preds stats ~arity_of (reorder plan)

let optimize ?stats ~arity_of plan =
  let base =
    match optimize_exn ~arity_of plan with
    | optimized -> optimized
    | exception Unknown_arity _ -> plan
    | exception Invalid_argument _ -> plan
  in
  match stats with
  | None -> base
  | Some s -> (
    (* the cost passes run after the rewrite pipeline: they deliberately
       move selections back {e up}, so the pipeline must not rerun *)
    match cost_based_passes s ~arity_of base with
    | costed -> costed
    | exception Unknown_arity _ -> base
    | exception Invalid_argument _ -> base)

let optimize_for ?stats ~schema plan = optimize ?stats ~arity_of:(Schema.arity schema) plan
