(* Plan optimizer for the relational algebra.

   Three cooperating rewrites, all semantics-preserving on set semantics
   (QCheck-verified in test/test_optimizer.ml):

   - selection pushdown: conjuncts of a [Select] sink toward the leaves —
     through [Project] (column remapping), into both sides of [Union] and
     [Diff], and onto the side of a [Product]/[Join] they mention;
   - join introduction: an equality [Col i = Col j] straddling a
     [Product] turns the product into a hash [Join] (additional
     straddling equalities extend an existing join's key);
   - projection pushdown: a [Project] narrows the operands of products,
     joins and selections to the columns actually consumed above
     (difference blocks pushdown: π(A − B) ≠ πA − πB);

   plus pruning of trivial nodes (identity projections, empty and
   nullary-true literals, nested selects/projects). *)

open Relalg

exception Unknown_arity of string

let arity ~arity_of plan =
  let rec go = function
    | Rel name -> (
      match arity_of name with
      | Some a -> a
      | None -> raise (Unknown_arity name))
    | Lit r -> Relation.arity r
    | Select (_, p) -> go p
    | Project (cols, _) -> List.length cols
    | Product (p, q) | Join (_, p, q) -> go p + go q
    | Union (p, _) | Diff (p, _) -> go p
  in
  go plan

(* ------------------------------------------------------------------ *)
(* Condition utilities                                                  *)
(* ------------------------------------------------------------------ *)

let rec arg_cols = function Col i -> [ i ] | Const _ -> []

and cond_cols = function
  | Eq (a, b) -> arg_cols a @ arg_cols b
  | Domain_pred (_, args) -> List.concat_map arg_cols args
  | Not c -> cond_cols c
  | And_c (a, b) | Or_c (a, b) -> cond_cols a @ cond_cols b

let remap_arg f = function Col i -> Col (f i) | Const v -> Const v

let rec remap_cond f = function
  | Eq (a, b) -> Eq (remap_arg f a, remap_arg f b)
  | Domain_pred (p, args) -> Domain_pred (p, List.map (remap_arg f) args)
  | Not c -> Not (remap_cond f c)
  | And_c (a, b) -> And_c (remap_cond f a, remap_cond f b)
  | Or_c (a, b) -> Or_c (remap_cond f a, remap_cond f b)

let rec cond_conjuncts = function
  | And_c (a, b) -> cond_conjuncts a @ cond_conjuncts b
  | c -> [ c ]

let conj_cond = function
  | [] -> None
  | c :: rest -> Some (List.fold_left (fun acc c -> And_c (acc, c)) c rest)

(* wrap [p] in a selection over the remaining conjuncts, if any *)
let reselect conds p =
  match conj_cond conds with None -> p | Some c -> Select (c, p)

let nth_col cols k =
  match List.nth_opt cols k with
  | Some c -> c
  | None -> invalid_arg "Optimizer: condition column out of projection range"

let pos_in needed k =
  let rec go i = function
    | [] -> invalid_arg "Optimizer: missing needed column"
    | c :: _ when c = k -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 needed

let identity_cols n = List.init n (fun i -> i)

(* ------------------------------------------------------------------ *)
(* The rewrite                                                          *)
(* ------------------------------------------------------------------ *)

let optimize_exn ~arity_of plan =
  let arity p = arity ~arity_of p in
  (* push a conjunction of selection conditions down into [p] *)
  let rec push_select conds p =
    match conds with
    | [] -> opt p
    | _ -> (
      match p with
      | Select (c, q) -> push_select (conds @ cond_conjuncts c) q
      | Project (cols, q) ->
        (* σ_c (π_cols q) = π_cols (σ_{c[cols]} q) *)
        let remapped = List.map (remap_cond (nth_col cols)) conds in
        push_project cols (push_select remapped q)
      | Product (q, r) | Join (_, q, r) -> (
        let na = arity q in
        let classify c =
          let cs = cond_cols c in
          if List.for_all (fun i -> i < na) cs then `Left c
          else if List.for_all (fun i -> i >= na) cs then `Right (remap_cond (fun i -> i - na) c)
          else
            match c with
            | Eq (Col i, Col j) when i < na && j >= na -> `Pair (i, j - na)
            | Eq (Col j, Col i) when i < na && j >= na -> `Pair (i, j - na)
            | c -> `Rest c
        in
        let classified = List.map classify conds in
        let left = List.filter_map (function `Left c -> Some c | _ -> None) classified in
        let right = List.filter_map (function `Right c -> Some c | _ -> None) classified in
        let pairs = List.filter_map (function `Pair ij -> Some ij | _ -> None) classified in
        let rest = List.filter_map (function `Rest c -> Some c | _ -> None) classified in
        let q' = push_select left q and r' = push_select right r in
        match (p, pairs) with
        | Product _, [] -> reselect rest (Product (q', r'))
        | Product _, _ -> reselect rest (Join (pairs, q', r'))
        | Join (existing, _, _), _ -> reselect rest (Join (existing @ pairs, q', r'))
        | _ -> assert false)
      | Union (q, r) -> Union (push_select conds q, push_select conds r)
      | Diff (q, r) ->
        (* σ(A − B) = σA − σB *)
        Diff (push_select conds q, push_select conds r)
      | Rel _ | Lit _ -> reselect conds (opt p))
  (* push a projection down into [p]; the result computes π_cols p *)
  and push_project cols p =
    let default () =
      let p' = opt p in
      if cols = identity_cols (arity p') then p' else Project (cols, p')
    in
    match p with
    | Project (cols', q) -> push_project (List.map (nth_col cols') cols) q
    | Select (c, q) ->
      let needed = List.sort_uniq compare (cols @ cond_cols c) in
      if List.length needed < arity q then
        let q' = push_project needed q in
        let inner = Select (remap_cond (pos_in needed) c, q') in
        let outer = List.map (pos_in needed) cols in
        if outer = identity_cols (List.length needed) then inner else Project (outer, inner)
      else default ()
    | Product (q, r) | Join (_, q, r) -> (
      let na = arity q and nb = arity r in
      let pairs = match p with Join (pairs, _, _) -> pairs | _ -> [] in
      let needed_left =
        List.sort_uniq compare (List.filter (fun i -> i < na) cols @ List.map fst pairs)
      in
      let needed_right =
        List.sort_uniq compare
          (List.map (fun i -> i - na) (List.filter (fun i -> i >= na) cols)
          @ List.map snd pairs)
      in
      if List.length needed_left < na || List.length needed_right < nb then begin
        let q' = push_project needed_left q and r' = push_project needed_right r in
        let remap i =
          if i < na then pos_in needed_left i
          else List.length needed_left + pos_in needed_right (i - na)
        in
        let pairs' =
          List.map (fun (i, j) -> (pos_in needed_left i, pos_in needed_right j)) pairs
        in
        let core =
          match p with Product _ -> Product (q', r') | _ -> Join (pairs', q', r')
        in
        let outer = List.map remap cols in
        if outer = identity_cols (List.length needed_left + List.length needed_right) then
          core
        else Project (outer, core)
      end
      else default ())
    | Union (q, r) -> Union (push_project cols q, push_project cols r)
    | Diff _ | Rel _ | Lit _ -> default ()
  and opt p =
    match p with
    | Rel _ | Lit _ -> p
    | Select (c, q) -> push_select (cond_conjuncts c) q
    | Project (cols, q) -> push_project cols q
    | Product (q, r) -> Product (opt q, opt r)
    | Join (pairs, q, r) -> Join (pairs, opt q, opt r)
    | Union (q, r) -> Union (opt q, opt r)
    | Diff (q, r) -> Diff (opt q, opt r)
  in
  (* prune trivial nodes, bottom-up *)
  let is_empty_lit = function Lit r -> Relation.is_empty r | _ -> false in
  let is_true0 = function
    | Lit r -> Relation.arity r = 0 && not (Relation.is_empty r)
    | _ -> false
  in
  let rec simplify p =
    match p with
    | Rel _ | Lit _ -> p
    | Select (c, q) ->
      let q' = simplify q in
      if is_empty_lit q' then q' else Select (c, q')
    | Project (cols, q) ->
      let q' = simplify q in
      if is_empty_lit q' then Lit (Relation.empty ~arity:(List.length cols))
      else if cols = identity_cols (arity q') then q'
      else Project (cols, q')
    | Product (q, r) ->
      let q' = simplify q and r' = simplify r in
      if is_empty_lit q' || is_empty_lit r' then
        Lit (Relation.empty ~arity:(arity q' + arity r'))
      else if is_true0 q' then r'
      else if is_true0 r' then q'
      else Product (q', r')
    | Join (pairs, q, r) ->
      let q' = simplify q and r' = simplify r in
      if is_empty_lit q' || is_empty_lit r' then
        Lit (Relation.empty ~arity:(arity q' + arity r'))
      else if pairs = [] && is_true0 q' then r'
      else if pairs = [] && is_true0 r' then q'
      else Join (pairs, q', r')
    | Union (q, r) ->
      let q' = simplify q and r' = simplify r in
      if is_empty_lit q' then r' else if is_empty_lit r' then q' else Union (q', r')
    | Diff (q, r) ->
      let q' = simplify q and r' = simplify r in
      if is_empty_lit q' || is_empty_lit r' then q' else Diff (q', r')
  in
  (* two rounds: pruning can expose further pushdown and vice versa *)
  simplify (opt (simplify (opt plan)))

let optimize ~arity_of plan =
  match optimize_exn ~arity_of plan with
  | optimized -> optimized
  | exception Unknown_arity _ -> plan
  | exception Invalid_argument _ -> plan

let optimize_for ~schema plan = optimize ~arity_of:(Schema.arity schema) plan
