type t = {
  schema : Schema.t;
  relations : (string * Relation.t) list;
  constants : (string * Value.t) list;  (* names without the @ prefix *)
  (* One engine-private memo slot (the [exn] is an extensible carrier so
     this module stays ignorant of the engine's types): the columnar
     engine stores the state's dictionary-encoded image here, built once
     and reused by every evaluation over this state.  A single word,
     written atomically; racing builders both produce valid caches and
     last-write-wins. *)
  mutable memo : exn option;
}

let strip_at c =
  if String.length c > 0 && c.[0] = '@' then String.sub c 1 (String.length c - 1) else c

let check_relation schema (name, rel) =
  match Schema.arity schema name with
  | None -> invalid_arg (Printf.sprintf "State: relation %s is not in the scheme" name)
  | Some a when a <> Relation.arity rel ->
    invalid_arg
      (Printf.sprintf "State: relation %s has arity %d, scheme says %d" name
         (Relation.arity rel) a)
  | Some _ -> ()

let make ~schema ?(constants = []) relations =
  List.iter (check_relation schema) relations;
  let constants = List.map (fun (c, v) -> (strip_at c, v)) constants in
  List.iter
    (fun (c, _) ->
      if not (Schema.mem_constant schema c) then
        invalid_arg (Printf.sprintf "State: constant %s is not in the scheme" c))
    constants;
  List.iter
    (fun c ->
      if not (List.mem_assoc c constants) then
        invalid_arg (Printf.sprintf "State: scheme constant %s is uninterpreted" c))
    (Schema.constants schema);
  { schema; relations; constants; memo = None }

let schema st = st.schema
let memo st = st.memo
let set_memo st e = st.memo <- Some e

let relation st name =
  match List.assoc_opt name st.relations with
  | Some r -> r
  | None -> (
    match Schema.arity st.schema name with
    | Some a -> Relation.empty ~arity:a
    | None -> raise Not_found)

let constant st name = List.assoc (strip_at name) st.constants
let constants st = st.constants

let active_domain st =
  let from_relations =
    List.concat_map (fun (name, _) -> Relation.values (relation st name)) st.relations
  in
  let from_constants = List.map snd st.constants in
  List.sort_uniq Value.compare (from_relations @ from_constants)

let with_relation st name rel =
  check_relation st.schema (name, rel);
  (* the memo describes the old relation set — never carry it over *)
  { st with relations = (name, rel) :: List.remove_assoc name st.relations; memo = None }

let pp fmt st =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, _) -> Format.fprintf fmt "%s = %a@," name Relation.pp (relation st name))
    (Schema.relations st.schema);
  List.iter (fun (c, v) -> Format.fprintf fmt "@%s = %a@," c Value.pp v) st.constants;
  Format.fprintf fmt "@]"
