module Sset = Set.Make (String)

type t =
  | Var of string
  | Const of string
  | App of string * t list

let rec compare t u =
  match (t, u) with
  | Var a, Var b -> String.compare a b
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Const a, Const b -> String.compare a b
  | Const _, _ -> -1
  | _, Const _ -> 1
  | App (f, ts), App (g, us) ->
    let c = String.compare f g in
    if c <> 0 then c else List.compare compare ts us

let equal t u = compare t u = 0

let hash t =
  let cmb h k = ((h * 0x01000193) lxor k) land max_int in
  let rec go h = function
    | Var v -> cmb (cmb h 1) (Hashtbl.hash v)
    | Const c -> cmb (cmb h 2) (Hashtbl.hash c)
    | App (f, ts) -> List.fold_left go (cmb (cmb h 3) (Hashtbl.hash f)) ts
  in
  go 0x811c9dc5 t

(* Constant names may contain characters of the trace alphabet; quote them
   so that printed terms re-parse unambiguously. *)
let pp_const fmt c =
  let plain_number = c <> "" && String.for_all (fun ch -> ch >= '0' && ch <= '9') c in
  let scheme = String.length c > 0 && c.[0] = '@' in
  if plain_number || scheme then Format.pp_print_string fmt c
  else Format.fprintf fmt "%S" c

(* Precedence levels for printing: additive (1) < multiplicative (2) <
   postfix successor (3) < atomic, so that output re-parses to the same
   term. *)
let pp fmt t =
  let rec go prec fmt t =
    let paren p body = if p < prec then Format.fprintf fmt "(%t)" body else body fmt in
    match t with
    | Var v -> Format.pp_print_string fmt v
    | Const c -> pp_const fmt c
    | App (("+" | "-") as op, [ a; b ]) ->
      paren 1 (fun fmt -> Format.fprintf fmt "%a %s %a" (go 1) a op (go 2) b)
    | App ("*", [ a; b ]) ->
      paren 2 (fun fmt -> Format.fprintf fmt "%a * %a" (go 2) a (go 3) b)
    | App ("s", [ a ]) -> paren 3 (fun fmt -> Format.fprintf fmt "%a'" (go 3) a)
    | App (f, []) -> Format.fprintf fmt "%s()" f
    | App (f, ts) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") (go 0))
        ts
  in
  go 0 fmt t

let to_string t = Format.asprintf "%a" pp t

let rec fold f acc t =
  match t with
  | Var _ | Const _ -> f acc t
  | App (_, ts) -> f (List.fold_left (fold f) acc ts) t

let vars t =
  let acc =
    fold
      (fun acc -> function
        | Var v when not (List.mem v acc) -> v :: acc
        | Var _ | Const _ | App _ -> acc)
      [] t
  in
  List.rev acc

let var_set t =
  fold
    (fun acc -> function
      | Var v -> Sset.add v acc
      | Const _ | App _ -> acc)
    Sset.empty t

let consts t =
  let acc =
    fold
      (fun acc -> function
        | Const c when not (List.mem c acc) -> c :: acc
        | Const _ | Var _ | App _ -> acc)
      [] t
  in
  List.rev acc

let funs t =
  let acc =
    fold
      (fun acc -> function
        | App (f, ts) when not (List.mem (f, List.length ts) acc) ->
          (f, List.length ts) :: acc
        | App _ | Var _ | Const _ -> acc)
      [] t
  in
  List.rev acc

let rec subst bindings t =
  match t with
  | Var v -> ( match List.assoc_opt v bindings with Some u -> u | None -> t)
  | Const _ -> t
  | App (f, ts) -> App (f, List.map (subst bindings) ts)

let rec subst_const c u t =
  match t with
  | Const c' when String.equal c c' -> u
  | Const _ | Var _ -> t
  | App (f, ts) -> App (f, List.map (subst_const c u) ts)

let rec is_ground = function
  | Var _ -> false
  | Const _ -> true
  | App (_, ts) -> List.for_all is_ground ts

let rec size = function
  | Var _ | Const _ -> 1
  | App (_, ts) -> List.fold_left (fun acc t -> acc + size t) 1 ts

let is_scheme_const c = String.length c > 0 && c.[0] = '@'
