(** First-order formulas of the relational calculus.

    A formula mixes {e database} predicates (the relation names of a
    database scheme, interpreted by a state) and {e domain} predicates and
    functions (interpreted by a fixed infinite domain such as [N_<] or the
    trace domain [T]). Equality is built in, as throughout the paper. *)

module Sset : Set.S with type elt = string

type t =
  | True
  | False
  | Atom of string * Term.t list  (** predicate applied to terms *)
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Exists of string * t
  | Forall of string * t

(** {1 Smart constructors} *)

val conj : t list -> t
(** Conjunction of a list; [conj [] = True]. *)

val disj : t list -> t
(** Disjunction of a list; [disj [] = False]. *)

val exists_many : string list -> t -> t
val forall_many : string list -> t -> t

val neq : Term.t -> Term.t -> t

(** {1 Structure} *)

val equal : t -> t -> bool
(** Structural equality (not alpha-equivalence). *)

val compare : t -> t -> int

val hash : t -> int
(** Structural hash, consistent with {!equal}. Combined with
    {!alpha_normalize} it keys hash tables up to alpha-equivalence. *)

val alpha_normalize : t -> t
(** Renames every bound variable to a canonical name determined by its
    binder depth, so alpha-equivalent formulas become structurally equal:
    [equal (alpha_normalize f) (alpha_normalize g)] iff [f] and [g] are
    alpha-equivalent. Free variables, constants and predicates are
    untouched; the result is logically equivalent to the input. *)

val free_vars : t -> string list
(** Free variables in order of first occurrence. *)

val free_var_set : t -> Sset.t
val all_vars : t -> Sset.t
(** Free and bound variables together. *)

val is_sentence : t -> bool
val consts : t -> string list
(** Constant symbols occurring anywhere in the formula. *)

val preds : t -> (string * int) list
(** Predicate symbols with arities, in order of first occurrence. *)

val funs : t -> (string * int) list
val size : t -> int
val quantifier_depth : t -> int

val conjuncts : t -> t list
(** Flattens nested [And]; [conjuncts True = []]. *)

val disjuncts : t -> t list

(** {1 Substitution} *)

val fresh_var : avoid:Sset.t -> string -> string
(** [fresh_var ~avoid base] is a variable named after [base] that does not
    occur in [avoid]. *)

val subst : (string * Term.t) list -> t -> t
(** Capture-avoiding simultaneous substitution of terms for free variables.
    Bound variables are renamed when needed. *)

val rename_bound : avoid:Sset.t -> t -> t
(** Renames every bound variable so that bound names are distinct from each
    other, from free variables, and from [avoid]. *)

val subst_const : string -> Term.t -> t -> t
(** Replace a constant symbol by a term everywhere — the paper's [\[z/c\]]
    operation used in Theorem 3.1. Capture-avoiding. *)

val map_atoms : (t -> t) -> t -> t
(** Applies a function to every [Atom] and [Eq] leaf, rebuilding the
    formula. The callback receives the leaf and must return a formula. *)

val exists_atom : (string -> Term.t list -> bool) -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
