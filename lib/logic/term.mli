(** First-order terms.

    Terms are nominal and untyped: a constant is just a symbol whose meaning
    is supplied by a domain (see {!Fq_domain.Domain}). By convention,
    constant names beginning with ['@'] are {e database-scheme constants}
    interpreted by a database state rather than by the domain (the constant
    symbol [c] of the paper's Theorem 3.1 is written [@c]). *)

type t =
  | Var of string  (** first-order variable *)
  | Const of string  (** constant symbol, domain- or state-interpreted *)
  | App of string * t list  (** function symbol applied to arguments *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val vars : t -> string list
(** Free variables, in order of first occurrence, without duplicates. *)

val var_set : t -> Set.Make(String).t
val consts : t -> string list
val funs : t -> (string * int) list
(** Function symbols with arities, without duplicates. *)

val subst : (string * t) list -> t -> t
(** [subst bindings t] simultaneously replaces each variable by its image.
    Variables without a binding are left untouched. *)

val subst_const : string -> t -> t -> t
(** [subst_const c u t] replaces every occurrence of the constant symbol [c]
    by the term [u] — the operation written [\[z/c\]] in the paper. *)

val is_ground : t -> bool
(** [true] iff the term contains no variable. *)

val size : t -> int
(** Number of nodes. *)

val is_scheme_const : string -> bool
(** [true] iff the constant name refers to the database scheme (['@']-prefixed). *)
