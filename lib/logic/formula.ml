module Sset = Set.Make (String)

type t =
  | True
  | False
  | Atom of string * Term.t list
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Exists of string * t
  | Forall of string * t

let rec conj = function
  | [] -> True
  | [ f ] -> f
  | f :: fs -> And (f, conj fs)

let rec disj = function
  | [] -> False
  | [ f ] -> f
  | f :: fs -> Or (f, disj fs)

let exists_many vs f = List.fold_right (fun v acc -> Exists (v, acc)) vs f
let forall_many vs f = List.fold_right (fun v acc -> Forall (v, acc)) vs f
let neq t u = Not (Eq (t, u))

let rec compare f g =
  let tag = function
    | True -> 0
    | False -> 1
    | Atom _ -> 2
    | Eq _ -> 3
    | Not _ -> 4
    | And _ -> 5
    | Or _ -> 6
    | Imp _ -> 7
    | Iff _ -> 8
    | Exists _ -> 9
    | Forall _ -> 10
  in
  match (f, g) with
  | True, True | False, False -> 0
  | Atom (p, ts), Atom (q, us) ->
    let c = String.compare p q in
    if c <> 0 then c else List.compare Term.compare ts us
  | Eq (t1, u1), Eq (t2, u2) ->
    let c = Term.compare t1 t2 in
    if c <> 0 then c else Term.compare u1 u2
  | Not a, Not b -> compare a b
  | And (a1, b1), And (a2, b2)
  | Or (a1, b1), Or (a2, b2)
  | Imp (a1, b1), Imp (a2, b2)
  | Iff (a1, b1), Iff (a2, b2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare b1 b2
  | Exists (v, a), Exists (w, b) | Forall (v, a), Forall (w, b) ->
    let c = String.compare v w in
    if c <> 0 then c else compare a b
  | _ -> Stdlib.compare (tag f) (tag g)

let equal f g = compare f g = 0

let rec free_var_set = function
  | True | False -> Sset.empty
  | Atom (_, ts) -> List.fold_left (fun acc t -> Sset.union acc (Term.var_set t)) Sset.empty ts
  | Eq (t, u) -> Sset.union (Term.var_set t) (Term.var_set u)
  | Not f -> free_var_set f
  | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) ->
    Sset.union (free_var_set f) (free_var_set g)
  | Exists (v, f) | Forall (v, f) -> Sset.remove v (free_var_set f)

let free_vars f =
  (* Order of first occurrence: walk the formula keeping track of bound
     variables on the path. *)
  let rec go bound acc = function
    | True | False -> acc
    | Atom (_, ts) ->
      List.fold_left
        (fun acc t ->
          List.fold_left
            (fun acc v -> if Sset.mem v bound || List.mem v acc then acc else v :: acc)
            acc (Term.vars t))
        acc ts
    | Eq (t, u) -> go bound (go bound acc (Atom ("", [ t ]))) (Atom ("", [ u ]))
    | Not f -> go bound acc f
    | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) -> go bound (go bound acc f) g
    | Exists (v, f) | Forall (v, f) -> go (Sset.add v bound) acc f
  in
  List.rev (go Sset.empty [] f)

let rec all_vars = function
  | True | False -> Sset.empty
  | Atom (_, ts) -> List.fold_left (fun acc t -> Sset.union acc (Term.var_set t)) Sset.empty ts
  | Eq (t, u) -> Sset.union (Term.var_set t) (Term.var_set u)
  | Not f -> all_vars f
  | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) -> Sset.union (all_vars f) (all_vars g)
  | Exists (v, f) | Forall (v, f) -> Sset.add v (all_vars f)

let is_sentence f = Sset.is_empty (free_var_set f)

let rec fold_atoms f acc = function
  | True | False -> acc
  | Atom _ as a -> f acc a
  | Eq _ as a -> f acc a
  | Not g -> fold_atoms f acc g
  | And (g, h) | Or (g, h) | Imp (g, h) | Iff (g, h) -> fold_atoms f (fold_atoms f acc g) h
  | Exists (_, g) | Forall (_, g) -> fold_atoms f acc g

let consts f =
  let add acc t = List.fold_left (fun acc c -> if List.mem c acc then acc else c :: acc) acc (Term.consts t) in
  let acc =
    fold_atoms
      (fun acc -> function
        | Atom (_, ts) -> List.fold_left add acc ts
        | Eq (t, u) -> add (add acc t) u
        | _ -> acc)
      [] f
  in
  List.rev acc

let preds f =
  let acc =
    fold_atoms
      (fun acc -> function
        | Atom (p, ts) when not (List.mem (p, List.length ts) acc) -> (p, List.length ts) :: acc
        | _ -> acc)
      [] f
  in
  List.rev acc

let funs f =
  let add acc t =
    List.fold_left (fun acc fa -> if List.mem fa acc then acc else fa :: acc) acc (Term.funs t)
  in
  let acc =
    fold_atoms
      (fun acc -> function
        | Atom (_, ts) -> List.fold_left add acc ts
        | Eq (t, u) -> add (add acc t) u
        | _ -> acc)
      [] f
  in
  List.rev acc

let rec size = function
  | True | False -> 1
  | Atom (_, ts) -> 1 + List.fold_left (fun acc t -> acc + Term.size t) 0 ts
  | Eq (t, u) -> 1 + Term.size t + Term.size u
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) -> 1 + size f

let rec quantifier_depth = function
  | True | False | Atom _ | Eq _ -> 0
  | Not f -> quantifier_depth f
  | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) ->
    Stdlib.max (quantifier_depth f) (quantifier_depth g)
  | Exists (_, f) | Forall (_, f) -> 1 + quantifier_depth f

let conjuncts f =
  let rec go acc = function
    | True -> acc
    | And (g, h) -> go (go acc h) g
    | g -> g :: acc
  in
  go [] f

let disjuncts f =
  let rec go acc = function
    | False -> acc
    | Or (g, h) -> go (go acc h) g
    | g -> g :: acc
  in
  go [] f

let fresh_var ~avoid base =
  if not (Sset.mem base avoid) then base
  else
    let rec go i =
      let cand = base ^ string_of_int i in
      if Sset.mem cand avoid then go (i + 1) else cand
    in
    go 1

let rec subst bindings f =
  let bindings = List.filter (fun (v, t) -> not (Term.equal (Term.Var v) t)) bindings in
  if bindings = [] then f
  else
    match f with
    | True | False -> f
    | Atom (p, ts) -> Atom (p, List.map (Term.subst bindings) ts)
    | Eq (t, u) -> Eq (Term.subst bindings t, Term.subst bindings u)
    | Not g -> Not (subst bindings g)
    | And (g, h) -> And (subst bindings g, subst bindings h)
    | Or (g, h) -> Or (subst bindings g, subst bindings h)
    | Imp (g, h) -> Imp (subst bindings g, subst bindings h)
    | Iff (g, h) -> Iff (subst bindings g, subst bindings h)
    | Exists (v, g) -> subst_quant bindings (fun v g -> Exists (v, g)) v g
    | Forall (v, g) -> subst_quant bindings (fun v g -> Forall (v, g)) v g

and subst_quant bindings rebuild v g =
  let bindings = List.filter (fun (w, _) -> w <> v) bindings in
  if bindings = [] then rebuild v g
  else
    let range_vars =
      List.fold_left (fun acc (_, t) -> Sset.union acc (Term.var_set t)) Sset.empty bindings
    in
    if Sset.mem v range_vars then begin
      (* Rename the bound variable to avoid capturing a substituted term. *)
      let avoid = Sset.union range_vars (all_vars g) in
      let v' = fresh_var ~avoid v in
      let g' = subst [ (v, Term.Var v') ] g in
      rebuild v' (subst bindings g')
    end
    else rebuild v (subst bindings g)

let rename_bound ~avoid f =
  let rec go used f =
    match f with
    | True | False | Atom _ | Eq _ -> (used, f)
    | Not g ->
      let used, g = go used g in
      (used, Not g)
    | And (g, h) ->
      let used, g = go used g in
      let used, h = go used h in
      (used, And (g, h))
    | Or (g, h) ->
      let used, g = go used g in
      let used, h = go used h in
      (used, Or (g, h))
    | Imp (g, h) ->
      let used, g = go used g in
      let used, h = go used h in
      (used, Imp (g, h))
    | Iff (g, h) ->
      let used, g = go used g in
      let used, h = go used h in
      (used, Iff (g, h))
    | Exists (v, g) ->
      let v' = fresh_var ~avoid:used v in
      let g = if v = v' then g else subst [ (v, Term.Var v') ] g in
      let used, g = go (Sset.add v' used) g in
      (used, Exists (v', g))
    | Forall (v, g) ->
      let v' = fresh_var ~avoid:used v in
      let g = if v = v' then g else subst [ (v, Term.Var v') ] g in
      let used, g = go (Sset.add v' used) g in
      (used, Forall (v', g))
  in
  snd (go (Sset.union avoid (free_var_set f)) f)

let alpha_normalize f =
  (* Bound variables are renamed to [prefix ^ binder-depth], so two
     alpha-equivalent formulas normalize to the same term — the key
     property behind the decision cache. The prefix is grown until no
     variable of [f] starts with it, making the canonical names fresh. *)
  let avoid = all_vars f in
  let prefix =
    let starts_with p v = String.length v >= String.length p && String.sub v 0 (String.length p) = p in
    let rec grow p = if Sset.exists (starts_with p) avoid then grow (p ^ "%") else p in
    grow "%"
  in
  let rec term env t =
    match t with
    | Term.Var v -> (
      match List.assoc_opt v env with Some w -> Term.Var w | None -> t)
    | Term.Const _ -> t
    | Term.App (fn, ts) -> Term.App (fn, List.map (term env) ts)
  in
  let rec go env depth f =
    match f with
    | True | False -> f
    | Atom (p, ts) -> Atom (p, List.map (term env) ts)
    | Eq (t, u) -> Eq (term env t, term env u)
    | Not g -> Not (go env depth g)
    | And (g, h) -> And (go env depth g, go env depth h)
    | Or (g, h) -> Or (go env depth g, go env depth h)
    | Imp (g, h) -> Imp (go env depth g, go env depth h)
    | Iff (g, h) -> Iff (go env depth g, go env depth h)
    | Exists (v, g) ->
      let w = prefix ^ string_of_int depth in
      Exists (w, go ((v, w) :: env) (depth + 1) g)
    | Forall (v, g) ->
      let w = prefix ^ string_of_int depth in
      Forall (w, go ((v, w) :: env) (depth + 1) g)
  in
  go [] 0 f

let hash f =
  let cmb h k = ((h * 0x01000193) lxor k) land max_int in
  let rec go h = function
    | True -> cmb h 1
    | False -> cmb h 2
    | Atom (p, ts) ->
      List.fold_left (fun h t -> cmb h (Term.hash t)) (cmb (cmb h 3) (Hashtbl.hash p)) ts
    | Eq (t, u) -> cmb (cmb (cmb h 4) (Term.hash t)) (Term.hash u)
    | Not g -> go (cmb h 5) g
    | And (g, h') -> go (go (cmb h 6) g) h'
    | Or (g, h') -> go (go (cmb h 7) g) h'
    | Imp (g, h') -> go (go (cmb h 8) g) h'
    | Iff (g, h') -> go (go (cmb h 9) g) h'
    | Exists (v, g) -> go (cmb (cmb h 10) (Hashtbl.hash v)) g
    | Forall (v, g) -> go (cmb (cmb h 11) (Hashtbl.hash v)) g
  in
  go 0x811c9dc5 f

let subst_const c t f =
  (* Rename bound variables clashing with [t]'s variables, then replace the
     constant everywhere. *)
  let f = rename_bound ~avoid:(Term.var_set t) f in
  let rec go f =
    match f with
    | True | False -> f
    | Atom (p, ts) -> Atom (p, List.map (Term.subst_const c t) ts)
    | Eq (a, b) -> Eq (Term.subst_const c t a, Term.subst_const c t b)
    | Not g -> Not (go g)
    | And (g, h) -> And (go g, go h)
    | Or (g, h) -> Or (go g, go h)
    | Imp (g, h) -> Imp (go g, go h)
    | Iff (g, h) -> Iff (go g, go h)
    | Exists (v, g) -> Exists (v, go g)
    | Forall (v, g) -> Forall (v, go g)
  in
  go f

let rec map_atoms fn f =
  match f with
  | True | False -> f
  | Atom _ | Eq _ -> fn f
  | Not g -> Not (map_atoms fn g)
  | And (g, h) -> And (map_atoms fn g, map_atoms fn h)
  | Or (g, h) -> Or (map_atoms fn g, map_atoms fn h)
  | Imp (g, h) -> Imp (map_atoms fn g, map_atoms fn h)
  | Iff (g, h) -> Iff (map_atoms fn g, map_atoms fn h)
  | Exists (v, g) -> Exists (v, map_atoms fn g)
  | Forall (v, g) -> Forall (v, map_atoms fn g)

let exists_atom p f =
  fold_atoms
    (fun acc -> function
      | Atom (name, ts) -> acc || p name ts
      | _ -> acc)
    false f

(* Precedence-aware printing: Iff(1) < Imp(2) < Or(3) < And(4) < Not/Q(5). *)
let pp fmt f =
  let rec go prec fmt f =
    let paren p body =
      if p < prec then Format.fprintf fmt "(%t)" body else body fmt
    in
    match f with
    | True -> Format.pp_print_string fmt "true"
    | False -> Format.pp_print_string fmt "false"
    | Atom (p, []) -> Format.fprintf fmt "%s()" p
    | Atom (p, [ t; u ]) when List.mem p [ "<"; "<="; ">"; ">=" ] ->
      paren 6 (fun fmt -> Format.fprintf fmt "%a %s %a" Term.pp t p Term.pp u)
    | Atom ("dvd", [ t; u ]) ->
      paren 6 (fun fmt -> Format.fprintf fmt "%a | %a" Term.pp t Term.pp u)
    | Atom (p, ts) ->
      Format.fprintf fmt "%s(%a)" p
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") Term.pp)
        ts
    | Eq (t, u) -> paren 6 (fun fmt -> Format.fprintf fmt "%a = %a" Term.pp t Term.pp u)
    | Not (Eq (t, u)) ->
      paren 6 (fun fmt -> Format.fprintf fmt "%a != %a" Term.pp t Term.pp u)
    | Not g -> paren 5 (fun fmt -> Format.fprintf fmt "~%a" (go 5) g)
    | And (g, h) -> paren 4 (fun fmt -> Format.fprintf fmt "%a /\\ %a" (go 4) g (go 5) h)
    | Or (g, h) -> paren 3 (fun fmt -> Format.fprintf fmt "%a \\/ %a" (go 3) g (go 4) h)
    | Imp (g, h) -> paren 2 (fun fmt -> Format.fprintf fmt "%a -> %a" (go 3) g (go 2) h)
    | Iff (g, h) -> paren 1 (fun fmt -> Format.fprintf fmt "%a <-> %a" (go 2) g (go 2) h)
    | Exists (v, g) ->
      let vs, body = strip_exists [ v ] g in
      paren 1 (fun fmt ->
          Format.fprintf fmt "exists %s. %a" (String.concat " " (List.rev vs)) (go 1) body)
    | Forall (v, g) ->
      let vs, body = strip_forall [ v ] g in
      paren 1 (fun fmt ->
          Format.fprintf fmt "forall %s. %a" (String.concat " " (List.rev vs)) (go 1) body)
  and strip_exists acc = function
    | Exists (v, g) -> strip_exists (v :: acc) g
    | g -> (acc, g)
  and strip_forall acc = function
    | Forall (v, g) -> strip_forall (v :: acc) g
    | g -> (acc, g)
  in
  go 0 fmt f

let to_string f = Format.asprintf "%a" pp f
