open Formula

let rec simplify f =
  match f with
  | True | False | Atom _ -> f
  | Eq (t, u) -> if Term.equal t u then True else f
  | Not g -> (
    match simplify g with
    | True -> False
    | False -> True
    | Not h -> h
    | g -> Not g)
  | And (g, h) -> (
    match (simplify g, simplify h) with
    | False, _ | _, False -> False
    | True, h -> h
    | g, True -> g
    | g, h -> if equal g h then g else And (g, h))
  | Or (g, h) -> (
    match (simplify g, simplify h) with
    | True, _ | _, True -> True
    | False, h -> h
    | g, False -> g
    | g, h -> if equal g h then g else Or (g, h))
  | Imp (g, h) -> (
    match (simplify g, simplify h) with
    | False, _ -> True
    | True, h -> h
    | _, True -> True
    | g, False -> simplify (Not g)
    | g, h -> if equal g h then True else Imp (g, h))
  | Iff (g, h) -> (
    match (simplify g, simplify h) with
    | True, h -> h
    | g, True -> g
    | False, h -> simplify (Not h)
    | g, False -> simplify (Not g)
    | g, h -> if equal g h then True else Iff (g, h))
  | Exists (v, g) -> (
    match simplify g with
    | True -> True (* domains are nonempty *)
    | False -> False
    | g -> if Sset.mem v (free_var_set g) then Exists (v, g) else g)
  | Forall (v, g) -> (
    match simplify g with
    | True -> True
    | False -> False
    | g -> if Sset.mem v (free_var_set g) then Forall (v, g) else g)

let rec nnf f =
  match f with
  | True | False | Atom _ | Eq _ -> f
  | Not g -> nnf_neg g
  | And (g, h) -> And (nnf g, nnf h)
  | Or (g, h) -> Or (nnf g, nnf h)
  | Imp (g, h) -> Or (nnf_neg g, nnf h)
  | Iff (g, h) -> Or (And (nnf g, nnf h), And (nnf_neg g, nnf_neg h))
  | Exists (v, g) -> Exists (v, nnf g)
  | Forall (v, g) -> Forall (v, nnf g)

and nnf_neg f =
  match f with
  | True -> False
  | False -> True
  | Atom _ | Eq _ -> Not f
  | Not g -> nnf g
  | And (g, h) -> Or (nnf_neg g, nnf_neg h)
  | Or (g, h) -> And (nnf_neg g, nnf_neg h)
  | Imp (g, h) -> And (nnf g, nnf_neg h)
  | Iff (g, h) -> Or (And (nnf g, nnf_neg h), And (nnf_neg g, nnf h))
  | Exists (v, g) -> Forall (v, nnf_neg g)
  | Forall (v, g) -> Exists (v, nnf_neg g)

let prenex f =
  let f = nnf f in
  let f = rename_bound ~avoid:Sset.empty f in
  (* After renaming apart, quantifiers can be pulled without capture. *)
  let rec pull f =
    match f with
    | True | False | Atom _ | Eq _ | Not _ -> ([], f)
    | Exists (v, g) ->
      let prefix, m = pull g in
      ((v, `Exists) :: prefix, m)
    | Forall (v, g) ->
      let prefix, m = pull g in
      ((v, `Forall) :: prefix, m)
    | And (g, h) ->
      let pg, mg = pull g in
      let ph, mh = pull h in
      (pg @ ph, And (mg, mh))
    | Or (g, h) ->
      let pg, mg = pull g in
      let ph, mh = pull h in
      (pg @ ph, Or (mg, mh))
    | Imp _ | Iff _ -> assert false (* eliminated by nnf *)
  in
  let prefix, m = pull f in
  List.fold_right
    (fun (v, q) acc -> match q with `Exists -> Exists (v, acc) | `Forall -> Forall (v, acc))
    prefix m

let miniscope f =
  let rec push f =
    match f with
    | True | False | Atom _ | Eq _ | Not _ -> f
    | And (g, h) -> And (push g, push h)
    | Or (g, h) -> Or (push g, push h)
    | Exists (x, g) -> push_exists x (push g)
    | Forall (x, g) -> push_forall x (push g)
    | Imp _ | Iff _ -> assert false (* eliminated by nnf *)
  and push_exists x g =
    if not (Sset.mem x (free_var_set g)) then g
    else
      match g with
      | Or (a, b) -> Or (push_exists x a, push_exists x b)
      | And (a, b) when not (Sset.mem x (free_var_set a)) -> And (a, push_exists x b)
      | And (a, b) when not (Sset.mem x (free_var_set b)) -> And (push_exists x a, b)
      | g -> Exists (x, g)
  and push_forall x g =
    if not (Sset.mem x (free_var_set g)) then g
    else
      match g with
      | And (a, b) -> And (push_forall x a, push_forall x b)
      | Or (a, b) when not (Sset.mem x (free_var_set a)) -> Or (a, push_forall x b)
      | Or (a, b) when not (Sset.mem x (free_var_set b)) -> Or (push_forall x a, b)
      | g -> Forall (x, g)
  in
  push (nnf f)

let matrix f =
  let rec go acc = function
    | Exists (v, g) -> go ((v, `Exists) :: acc) g
    | Forall (v, g) -> go ((v, `Forall) :: acc) g
    | g -> (List.rev acc, g)
  in
  go [] f

let bad_input name = invalid_arg (name ^ ": input must be quantifier-free and in NNF")

let rec dnf f =
  match f with
  | True -> [ [] ]
  | False -> []
  | Atom _ | Eq _ | Not (Atom _) | Not (Eq _) -> [ [ f ] ]
  | Or (g, h) -> dnf g @ dnf h
  | And (g, h) ->
    (* The cross product is the exponential seat of clause normal forms —
       checkpoint each emitted clause so a governed caller can cut the
       expansion short instead of hanging. *)
    let dg = dnf g and dh = dnf h in
    List.concat_map
      (fun cg ->
        List.map
          (fun ch ->
            Fq_core.Budget.tick_ambient ();
            cg @ ch)
          dh)
      dg
  | Not _ | Imp _ | Iff _ | Exists _ | Forall _ -> bad_input "Transform.dnf"

let rec cnf f =
  match f with
  | True -> []
  | False -> [ [] ]
  | Atom _ | Eq _ | Not (Atom _) | Not (Eq _) -> [ [ f ] ]
  | And (g, h) -> cnf g @ cnf h
  | Or (g, h) ->
    let cg = cnf g and ch = cnf h in
    List.concat_map
      (fun dg ->
        List.map
          (fun dh ->
            Fq_core.Budget.tick_ambient ();
            dg @ dh)
          ch)
      cg
  | Not _ | Imp _ | Iff _ | Exists _ | Forall _ -> bad_input "Transform.cnf"

let of_dnf clauses = disj (List.map conj clauses)
let of_cnf clauses = conj (List.map disj clauses)

let eliminate_quantifiers ~exists_conj f =
  (* Innermost-first elimination. [elim f] returns a quantifier-free
     formula equivalent to [f], assuming [f] is in NNF. *)
  let rec elim f =
    match f with
    | True | False | Atom _ | Eq _ | Not _ -> f
    | And (g, h) -> And (elim g, elim h)
    | Or (g, h) -> Or (elim g, elim h)
    | Exists (v, g) -> elim_exists v (elim g)
    | Forall (v, g) -> simplify (nnf (Not (elim_exists v (nnf (Not (elim g))))))
    | Imp _ | Iff _ -> assert false
  and elim_exists v g =
    let g = simplify g in
    if not (Sset.mem v (free_var_set g)) then g
    else
      let clauses = dnf (nnf g) in
      let eliminated =
        List.map
          (fun lits ->
            Fq_core.Budget.tick_ambient ();
            exists_conj v lits)
          clauses
      in
      simplify (disj eliminated)
  in
  (* miniscoping first keeps the per-quantifier DNF matrices small *)
  simplify (elim (miniscope (simplify f)))
