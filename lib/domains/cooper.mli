(** Cooper's quantifier-elimination decision procedure for Presburger
    arithmetic over the {e integers} [(ℤ, <, +, constants, divisibility)].

    This is the workhorse behind the paper's Section 2 positive cases: the
    domain [N_<] and its extensions (ordered naturals, Presburger
    arithmetic) are reducts of [(ℕ, +, <)], whose sentences relativize into
    ℤ-sentences decided here (see {!Presburger}). The dedicated [N_<] and
    [N_succ] procedures are cross-checked against this module in the test
    suite.

    The formula language accepted: equality, the predicates [<], [<=], [>],
    [>=], divisibility atoms [dvd(k, t)] (written [k | t]) with a constant
    [k], and linear terms (see {!Linear_term.of_term}). *)

type atom =
  | Lt of Linear_term.t  (** [0 < t] *)
  | Dvd of Fq_numeric.Bigint.t * Linear_term.t  (** [d | t], [d > 0] *)
  | Ndvd of Fq_numeric.Bigint.t * Linear_term.t

type qf =
  | T
  | F
  | A of atom
  | Conj of qf * qf
  | Disj of qf * qf
      (** Quantifier-free, negation-free normal form: negation is pushed
          into atoms ([¬(0<t) ≡ 0<1−t], [¬(d|t) ≡ Ndvd]). *)

val of_formula : Fq_logic.Formula.t -> (qf, string) result
(** Converts a {e quantifier-free} formula. *)

val to_formula : qf -> Fq_logic.Formula.t

val qf_not : qf -> qf
val eliminate : string -> qf -> qf
(** [eliminate x phi] is a quantifier-free [qf] equivalent (over ℤ) to
    [∃x. phi] — one step of Cooper's algorithm. Checkpoints each of the
    δ·(1+|B|) expansion instances against the ambient {!Fq_core.Budget};
    raises [Budget.Exhausted (Unsupported _)] when the divisor LCM δ (a
    {!Fq_numeric.Bigint}) exceeds the native expansion range. *)

val qe : ?budget:Fq_core.Budget.t -> Fq_logic.Formula.t -> (qf, string) result
(** Eliminates all quantifiers of an arbitrary formula. Runs under
    [budget] when given; governor trips come back as the structured
    [Error] strings of {!Fq_core.Budget.error_string} (recover with
    [failure_of_string]), never as exceptions. *)

val eval_qf : env:(string * Fq_numeric.Bigint.t) list -> qf -> (bool, string) result

val decide : ?budget:Fq_core.Budget.t -> Fq_logic.Formula.t -> (bool, string) result
(** Truth of a sentence in [(ℤ, <, +, dvd)]. Same budget contract as
    {!qe}. *)

val atom_count : qf -> int
(** For benchmarks: the number of atoms in a formula. *)
