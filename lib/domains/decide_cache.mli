(** Memoized decision cache: repeated [D.decide] calls on
    alpha-equivalent closed formulas hit a hash table keyed by the
    alpha-normalized formula ({!Fq_logic.Formula.alpha_normalize}).

    Caching is sound because a domain's theory is fixed: a sentence's
    truth value never changes, and alpha-equivalent sentences have the
    same truth value. Fragment errors are cached too (a formula outside
    the domain's language stays outside it) — but budget trips escaping
    through the string-error channel are {e not}: they describe the
    ambient budget at the time, not the formula, and caching one would
    poison every later retry or resumed scan with a stale failure.

    A cache is safe to share between the worker domains of a
    {!Fq_core.Supervisor} pool: the table is mutex-guarded, while the
    underlying decision runs outside the lock (two workers may race on
    the same miss; both compute the same theory-determined verdict, so
    the duplicate work is bounded and the result is unchanged). *)

type t

type stats = { hits : int; misses : int; entries : int; evictions : int }

val create : ?size:int -> ?capacity:int -> unit -> t
(** [size] is the initial hash-table size hint; [capacity] (default
    [4096]) bounds the number of {e retained} entries — the least
    recently used entry is evicted when an insertion would exceed it.  A
    non-positive [capacity] disables eviction (the pre-LRU unbounded
    behavior).  Lookups count as uses, so hot sentences survive long
    enumerations even when the candidate stream churns the tail. *)

val stats : t -> stats
(** Per-instance counts.  Hits, misses and evictions are also mirrored
    into the telemetry counters [decide_cache.hits]/[decide_cache.misses]
    /[decide_cache.evictions] (which aggregate across caches while a
    {!Fq_core.Telemetry} recording is active); this accessor remains as a
    thin per-cache view. *)

val hit_rate : stats -> float
(** Fraction of lookups served from the cache; [0.] when no lookups. *)

val clear : t -> unit

val set_on_insert : t -> (Fq_logic.Formula.t -> (bool, string) result -> unit) option -> unit
(** [set_on_insert c (Some hook)] makes {!decide} call
    [hook key verdict] once per {e fresh} cacheable fill — after the
    cache lock is released, and never for hits, racing refills, or
    {!restore}/{!load}.  This is the durability tap: [fq serve] hooks a
    journal append here, so every verdict the cache learns is on disk
    before the crash that would otherwise forfeit it.  The hook runs on
    the deciding thread and must not call back into the cache. *)

(** {1 Snapshots} — warm-start serialization for [fq serve].

    A snapshot is a versioned text file ([fq-decide-cache 1]) holding
    every cached verdict, MRU first: the alpha-normalized key formula in
    concrete syntax plus its [Ok]/fragment-error verdict.  Budget trips
    are never in the table, so every snapshot entry is a
    theory-determined eternal truth — loading one into a fresh cache is
    sound for the same domain theory, and a restarted server answers
    previously-seen sentences without re-paying quantifier
    elimination. *)

val save : t -> string -> (int, string) result
(** [save c path] writes the snapshot atomically (temp file + rename) and
    returns the number of entries written.  A failed save — including one
    injected at the ["decide_cache.snapshot.save"] fault site — leaves
    any existing snapshot at [path] byte-identical: the rename is the
    only publish. *)

val load : t -> string -> (int, string) result
(** [load c path] parses a snapshot and merges it into [c], restoring the
    saved recency order (existing entries are refreshed in place); the
    capacity bound applies, so an over-capacity snapshot keeps its
    most-recently-used prefix.  Returns the number of entries read;
    [Error] on a missing file, a version mismatch, or a malformed
    line. *)

val entry_to_line : Fq_logic.Formula.t -> (bool, string) result -> string
(** One cached verdict rendered as a single snapshot-format line (no
    trailing newline): [ok\tBOOL\tFORMULA] or [err\tESCAPED\tFORMULA].
    Guaranteed newline-free, so it doubles as the payload of a
    {!Fq_server.Journal} record. *)

val entry_of_line : string -> (Fq_logic.Formula.t * (bool, string) result, string) result
(** Parse an {!entry_to_line} rendering back into an (alpha-normalized
    key, verdict) pair. *)

val restore : t -> Fq_logic.Formula.t -> (bool, string) result -> unit
(** [restore c key value] inserts one entry at the MRU front (refreshing
    it in place if present) without firing the {!set_on_insert} hook —
    the replay primitive for snapshot loading and journal recovery.
    [key] must already be alpha-normalized ({!entry_of_line} output
    is). *)

val decide : t -> Domain.t -> Fq_logic.Formula.t -> (bool, string) result
(** [decide cache d f] returns the cached verdict for any sentence
    alpha-equivalent to [f], calling [D.decide] on a miss. *)

val domain : t -> Domain.t -> Domain.t
(** [domain cache d] is [d] with its [decide] routed through the cache —
    a drop-in replacement wherever a {!Domain.t} is consumed
    (e.g. {!Fq_eval.Enumerate.run}). *)
