(* Memoized decision cache.

   The Section 1.1 enumeration algorithm re-decides closely related
   closed formulas over and over: the candidate test ϕ(ā) recurs whenever
   the enumeration revisits a tuple (the active domain is scanned first
   and reappears in the domain enumeration), and harness code decides the
   same completeness sentences across runs. Keys are alpha-normalized
   before lookup, so any two alpha-equivalent sentences share one cache
   line ("hash-consed" up to bound-variable names). *)

module Formula = Fq_logic.Formula

module Key = struct
  type t = Formula.t

  let equal = Formula.equal
  let hash = Formula.hash
end

module H = Hashtbl.Make (Key)

type stats = { hits : int; misses : int; entries : int }

type t = {
  table : (bool, string) result H.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create ?(size = 256) () = { table = H.create size; cache_hits = 0; cache_misses = 0 }

let stats c = { hits = c.cache_hits; misses = c.cache_misses; entries = H.length c.table }

let hit_rate { hits; misses; _ } =
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)

let clear c =
  H.reset c.table;
  c.cache_hits <- 0;
  c.cache_misses <- 0

(* The telemetry counters are the authoritative observable (they aggregate
   across every cache in a recording); the per-instance ints survive so the
   [stats] accessor keeps its historical meaning for existing callers. *)
let decide c (module D : Domain.S) f =
  let key = Formula.alpha_normalize f in
  match H.find_opt c.table key with
  | Some r ->
    c.cache_hits <- c.cache_hits + 1;
    Fq_core.Telemetry.count "decide_cache.hits";
    r
  | None ->
    c.cache_misses <- c.cache_misses + 1;
    Fq_core.Telemetry.count "decide_cache.misses";
    let r = D.decide f in
    H.add c.table key r;
    r

(* A domain whose [decide] consults the cache; every other component is
   forwarded. Lets cache-oblivious code (Enumerate, Relative_safety, the
   finitization check) benefit by a plain domain swap. *)
let domain c ((module D : Domain.S) as d) : Domain.t =
  (module struct
    let name = D.name
    let signature = D.signature
    let member = D.member
    let constant = D.constant
    let const_name = D.const_name
    let eval_fun = D.eval_fun
    let eval_pred = D.eval_pred
    let enumerate = D.enumerate
    let seeds = D.seeds
    let decide f = decide c d f
  end)
