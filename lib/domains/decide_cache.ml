(* Memoized decision cache.

   The Section 1.1 enumeration algorithm re-decides closely related
   closed formulas over and over: the candidate test ϕ(ā) recurs whenever
   the enumeration revisits a tuple (the active domain is scanned first
   and reappears in the domain enumeration), and harness code decides the
   same completeness sentences across runs. Keys are alpha-normalized
   before lookup, so any two alpha-equivalent sentences share one cache
   line ("hash-consed" up to bound-variable names). *)

module Formula = Fq_logic.Formula

module Key = struct
  type t = Formula.t

  let equal = Formula.equal
  let hash = Formula.hash
end

module H = Hashtbl.Make (Key)

type stats = { hits : int; misses : int; entries : int; evictions : int }

(* intrusive doubly-linked recency list: head = most recently used *)
type node = {
  key : Formula.t;
  mutable value : (bool, string) result;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  table : node H.t;
  mutable head : node option;
  mutable tail : node option;
  capacity : int;  (* <= 0 means unbounded *)
  lock : Mutex.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable insert_hook : (Formula.t -> (bool, string) result -> unit) option;
}

let create ?(size = 256) ?(capacity = 4096) () =
  { table = H.create size;
    head = None;
    tail = None;
    capacity;
    lock = Mutex.create ();
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    insert_hook = None }

let set_on_insert c hook = c.insert_hook <- hook

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(* list surgery; all under the cache lock *)
let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.next <- c.head;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let touch c n =
  match c.head with
  | Some h when h == n -> ()
  | _ ->
    unlink c n;
    push_front c n

let evict_excess c =
  if c.capacity > 0 then
    while H.length c.table > c.capacity do
      match c.tail with
      | None -> assert false (* length > 0 implies a tail *)
      | Some lru ->
        unlink c lru;
        H.remove c.table lru.key;
        c.cache_evictions <- c.cache_evictions + 1;
        Fq_core.Telemetry.count "decide_cache.evictions"
    done

let stats c =
  locked c (fun () ->
      { hits = c.cache_hits;
        misses = c.cache_misses;
        entries = H.length c.table;
        evictions = c.cache_evictions })

let hit_rate { hits; misses; _ } =
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)

let clear c =
  locked c (fun () ->
      H.reset c.table;
      c.head <- None;
      c.tail <- None;
      c.cache_hits <- 0;
      c.cache_misses <- 0;
      c.cache_evictions <- 0)

(* A verdict is cacheable when it depends only on the domain's theory:
   [Ok _] and "this formula is outside the fragment" are eternal truths,
   but a budget trip ([Budget.Exhausted] escaping through the string-error
   channel) reflects the budget that happened to be ambient at the time.
   Caching one would poison the table — a later, better-funded run (a
   resumed scan, a retry with a fresh fair share) would keep hitting the
   stale trip forever. *)
let cacheable = function
  | Ok _ -> true
  | Error e -> (
    match Fq_core.Budget.failure_of_string e with
    | Some (Fuel_exhausted | Deadline_exceeded | Cancelled | Oversize _) -> false
    | Some (Unsupported _) | None -> true)

(* The telemetry counters are the authoritative observable (they aggregate
   across every cache in a recording); the per-instance ints survive so the
   [stats] accessor keeps its historical meaning for existing callers.

   Concurrency: the table is consulted and filled under the mutex, but the
   underlying [D.decide] runs outside it — decisions can be slow (that is
   why they are cached), and holding the lock across one would serialize a
   whole worker pool on the slowest decide.  The price is that two workers
   missing on the same key may both run the decision; both writes store
   the same theory-determined verdict, so last-write-wins is sound. *)
let decide c (module D : Domain.S) f =
  let key = Formula.alpha_normalize f in
  Fq_core.Fault.hit "decide_cache.lookup";
  let cached =
    locked c (fun () ->
        match H.find_opt c.table key with
        | Some n ->
          c.cache_hits <- c.cache_hits + 1;
          touch c n;
          Some n.value
        | None ->
          c.cache_misses <- c.cache_misses + 1;
          None)
  in
  match cached with
  | Some r ->
    Fq_core.Telemetry.count "decide_cache.hits";
    r
  | None ->
    Fq_core.Telemetry.count "decide_cache.misses";
    let r = D.decide f in
    if cacheable r then begin
      let fresh =
        locked c (fun () ->
            let fresh =
              match H.find_opt c.table key with
              | Some n ->
                (* a racing worker filled it first; verdicts agree *)
                n.value <- r;
                touch c n;
                false
              | None ->
                let n = { key; value = r; prev = None; next = None } in
                H.replace c.table key n;
                push_front c n;
                true
            in
            evict_excess c;
            fresh)
      in
      (* Fire the insert hook outside the lock (it may do file I/O —
         the server's journal append) and only for the first fill of a
         key: hits, racing refills and snapshot restores are already
         durable or redundant. *)
      match (fresh, c.insert_hook) with
      | true, Some hook -> hook key r
      | _ -> ()
    end;
    r

(* ----------------------------- snapshots ---------------------------- *)

(* Versioned text format, one cached verdict per line, MRU first:

     fq-decide-cache 1
     ok	BOOL	FORMULA
     err	ESCAPED_MESSAGE	FORMULA

   The formula is the alpha-normalized cache key printed in the concrete
   syntax (print/parse is a tested roundtrip), rendered on an
   infinite-margin formatter so it stays on one line; error messages are
   String.escaped so tabs/newlines cannot break the framing.  Only
   theory-determined verdicts are in the table (budget trips are never
   cached), so every entry is eternally valid — a snapshot taken today
   warms a server booted next month. *)

let snapshot_magic = "fq-decide-cache"
let snapshot_version = 1

(* Cache keys are alpha-normalized, and [Formula.alpha_normalize] names
   bound variables with a '%' prefix the lexer cannot read back.  Print
   them under a parseable capture-avoiding renaming instead: [load]
   re-normalizes every key, so any such renaming round-trips to the
   identical key. *)
let parseable_bound f =
  let module T = Fq_logic.Term in
  let free = Formula.free_vars f in
  let starts_with p v =
    String.length v >= String.length p && String.sub v 0 (String.length p) = p
  in
  let rec grow p = if List.exists (starts_with p) free then grow (p ^ "v") else p in
  let prefix = grow "v" in
  let rec term env t =
    match t with
    | T.Var v -> ( match List.assoc_opt v env with Some w -> T.Var w | None -> t)
    | T.Const _ -> t
    | T.App (fn, ts) -> T.App (fn, List.map (term env) ts)
  in
  let rec go env depth f =
    match f with
    | Formula.True | Formula.False -> f
    | Formula.Atom (p, ts) -> Formula.Atom (p, List.map (term env) ts)
    | Formula.Eq (t, u) -> Formula.Eq (term env t, term env u)
    | Formula.Not g -> Formula.Not (go env depth g)
    | Formula.And (g, h) -> Formula.And (go env depth g, go env depth h)
    | Formula.Or (g, h) -> Formula.Or (go env depth g, go env depth h)
    | Formula.Imp (g, h) -> Formula.Imp (go env depth g, go env depth h)
    | Formula.Iff (g, h) -> Formula.Iff (go env depth g, go env depth h)
    | Formula.Exists (v, g) ->
      let w = prefix ^ string_of_int depth in
      Formula.Exists (w, go ((v, w) :: env) (depth + 1) g)
    | Formula.Forall (v, g) ->
      let w = prefix ^ string_of_int depth in
      Formula.Forall (w, go ((v, w) :: env) (depth + 1) g)
  in
  go [] 0 f

let formula_line f =
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt max_int;
  Format.fprintf fmt "%a@?" Formula.pp (parseable_bound f);
  Buffer.contents buf

(* One cached verdict as a single line (no trailing newline) — the unit
   shared by snapshot files and the server's journal records.  The
   formula is the alpha-normalized key in concrete syntax on an
   infinite-margin formatter; error messages are String.escaped, so a
   rendered entry can never contain '\n'. *)
let entry_to_line key value =
  match value with
  | Ok b -> Printf.sprintf "ok\t%b\t%s" b (formula_line key)
  | Error e -> Printf.sprintf "err\t%s\t%s" (String.escaped e) (formula_line key)

let entry_of_line line =
  match String.split_on_char '\t' line with
  | [ "ok"; b; formula ] -> (
    match (bool_of_string_opt b, Fq_logic.Parser.formula formula) with
    | Some b, Ok f -> Ok (Formula.alpha_normalize f, Ok b)
    | None, _ -> Error (Printf.sprintf "bad verdict %S" b)
    | _, Error e -> Error e)
  | [ "err"; msg; formula ] -> (
    match Fq_logic.Parser.formula formula with
    | Ok f -> (
      match Scanf.unescaped msg with
      | msg -> Ok (Formula.alpha_normalize f, Error msg)
      | exception Scanf.Scan_failure _ -> Error "bad escape")
    | Error e -> Error e)
  | _ -> Error "expected ok/err entry"

let save c path =
  let entries =
    (* under the lock: walk MRU -> LRU; render outside any I/O failure *)
    locked c (fun () ->
        let rec walk acc = function
          | None -> List.rev acc
          | Some n -> walk ((n.key, n.value) :: acc) n.next
        in
        walk [] c.head)
  in
  let tmp = path ^ ".tmp" in
  match Fq_core.Fault.hit "decide_cache.snapshot.save" with
  | exception e ->
    (* injected before the tmp file opens: a failed save must leave any
       existing snapshot byte-identical (the rename is the only publish) *)
    Error (Printf.sprintf "snapshot: injected fault: %s" (Printexc.to_string e))
  | () -> (
  match open_out tmp with
  | exception Sys_error msg -> Error (Printf.sprintf "snapshot: %s" msg)
  | oc -> (
    match
      Printf.fprintf oc "%s %d\n" snapshot_magic snapshot_version;
      List.iter
        (fun (key, value) -> Printf.fprintf oc "%s\n" (entry_to_line key value))
        entries;
      close_out oc;
      Sys.rename tmp path
    with
    | () -> Ok (List.length entries)
    | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "snapshot: %s" msg)))

(* Insert one restored entry at the front of the recency list.  The
   loader feeds entries LRU-first, so after the last insertion the
   snapshot's recency order is restored exactly; the capacity bound
   applies as usual (an over-capacity snapshot keeps its MRU prefix). *)
let restore c key value =
  locked c (fun () ->
      (match H.find_opt c.table key with
      | Some n ->
        n.value <- value;
        touch c n
      | None ->
        let n = { key; value; prev = None; next = None } in
        H.replace c.table key n;
        push_front c n);
      evict_excess c)

let load c path =
  match open_in path with
  | exception Sys_error msg -> Error (Printf.sprintf "snapshot: %s" msg)
  | ic ->
    let finally () = close_in_noerr ic in
    Fun.protect ~finally @@ fun () ->
    (match input_line ic with
    | exception End_of_file -> Error "snapshot: empty file"
    | header -> (
      match String.split_on_char ' ' (String.trim header) with
      | [ magic; version ] when magic = snapshot_magic ->
        if int_of_string_opt version = Some snapshot_version then Ok ()
        else Error (Printf.sprintf "snapshot: unsupported version %s (want %d)" version snapshot_version)
      | _ -> Error (Printf.sprintf "snapshot: bad header %S" header)))
    |> Fun.flip Result.bind @@ fun () ->
    let parse_entry lineno line =
      Result.map_error
        (fun e -> Printf.sprintf "snapshot: line %d: %s" lineno e)
        (entry_of_line line)
    in
    let rec read acc lineno =
      match input_line ic with
      | exception End_of_file -> Ok acc (* accumulated in reverse: LRU first *)
      | line ->
        let line = String.trim line in
        if line = "" then read acc (lineno + 1)
        else Result.bind (parse_entry lineno line) (fun e -> read (e :: acc) (lineno + 1))
    in
    Result.map
      (fun entries ->
        List.iter (fun (key, value) -> if cacheable value then restore c key value) entries;
        List.length entries)
      (read [] 2)

(* A domain whose [decide] consults the cache; every other component is
   forwarded. Lets cache-oblivious code (Enumerate, Relative_safety, the
   finitization check) benefit by a plain domain swap. *)
let domain c ((module D : Domain.S) as d) : Domain.t =
  (module struct
    let name = D.name
    let signature = D.signature
    let member = D.member
    let constant = D.constant
    let const_name = D.const_name
    let eval_fun = D.eval_fun
    let eval_pred = D.eval_pred
    let enumerate = D.enumerate
    let seeds = D.seeds
    let decide f = decide c d f
  end)
