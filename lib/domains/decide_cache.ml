(* Memoized decision cache.

   The Section 1.1 enumeration algorithm re-decides closely related
   closed formulas over and over: the candidate test ϕ(ā) recurs whenever
   the enumeration revisits a tuple (the active domain is scanned first
   and reappears in the domain enumeration), and harness code decides the
   same completeness sentences across runs. Keys are alpha-normalized
   before lookup, so any two alpha-equivalent sentences share one cache
   line ("hash-consed" up to bound-variable names). *)

module Formula = Fq_logic.Formula

module Key = struct
  type t = Formula.t

  let equal = Formula.equal
  let hash = Formula.hash
end

module H = Hashtbl.Make (Key)

type stats = { hits : int; misses : int; entries : int; evictions : int }

(* intrusive doubly-linked recency list: head = most recently used *)
type node = {
  key : Formula.t;
  mutable value : (bool, string) result;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  table : node H.t;
  mutable head : node option;
  mutable tail : node option;
  capacity : int;  (* <= 0 means unbounded *)
  lock : Mutex.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}

let create ?(size = 256) ?(capacity = 4096) () =
  { table = H.create size;
    head = None;
    tail = None;
    capacity;
    lock = Mutex.create ();
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0 }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(* list surgery; all under the cache lock *)
let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.next <- c.head;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let touch c n =
  match c.head with
  | Some h when h == n -> ()
  | _ ->
    unlink c n;
    push_front c n

let evict_excess c =
  if c.capacity > 0 then
    while H.length c.table > c.capacity do
      match c.tail with
      | None -> assert false (* length > 0 implies a tail *)
      | Some lru ->
        unlink c lru;
        H.remove c.table lru.key;
        c.cache_evictions <- c.cache_evictions + 1;
        Fq_core.Telemetry.count "decide_cache.evictions"
    done

let stats c =
  locked c (fun () ->
      { hits = c.cache_hits;
        misses = c.cache_misses;
        entries = H.length c.table;
        evictions = c.cache_evictions })

let hit_rate { hits; misses; _ } =
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)

let clear c =
  locked c (fun () ->
      H.reset c.table;
      c.head <- None;
      c.tail <- None;
      c.cache_hits <- 0;
      c.cache_misses <- 0;
      c.cache_evictions <- 0)

(* A verdict is cacheable when it depends only on the domain's theory:
   [Ok _] and "this formula is outside the fragment" are eternal truths,
   but a budget trip ([Budget.Exhausted] escaping through the string-error
   channel) reflects the budget that happened to be ambient at the time.
   Caching one would poison the table — a later, better-funded run (a
   resumed scan, a retry with a fresh fair share) would keep hitting the
   stale trip forever. *)
let cacheable = function
  | Ok _ -> true
  | Error e -> (
    match Fq_core.Budget.failure_of_string e with
    | Some (Fuel_exhausted | Deadline_exceeded | Cancelled | Oversize _) -> false
    | Some (Unsupported _) | None -> true)

(* The telemetry counters are the authoritative observable (they aggregate
   across every cache in a recording); the per-instance ints survive so the
   [stats] accessor keeps its historical meaning for existing callers.

   Concurrency: the table is consulted and filled under the mutex, but the
   underlying [D.decide] runs outside it — decisions can be slow (that is
   why they are cached), and holding the lock across one would serialize a
   whole worker pool on the slowest decide.  The price is that two workers
   missing on the same key may both run the decision; both writes store
   the same theory-determined verdict, so last-write-wins is sound. *)
let decide c (module D : Domain.S) f =
  let key = Formula.alpha_normalize f in
  Fq_core.Fault.hit "decide_cache.lookup";
  let cached =
    locked c (fun () ->
        match H.find_opt c.table key with
        | Some n ->
          c.cache_hits <- c.cache_hits + 1;
          touch c n;
          Some n.value
        | None ->
          c.cache_misses <- c.cache_misses + 1;
          None)
  in
  match cached with
  | Some r ->
    Fq_core.Telemetry.count "decide_cache.hits";
    r
  | None ->
    Fq_core.Telemetry.count "decide_cache.misses";
    let r = D.decide f in
    if cacheable r then
      locked c (fun () ->
          (match H.find_opt c.table key with
          | Some n ->
            (* a racing worker filled it first; verdicts agree *)
            n.value <- r;
            touch c n
          | None ->
            let n = { key; value = r; prev = None; next = None } in
            H.replace c.table key n;
            push_front c n);
          evict_excess c);
    r

(* A domain whose [decide] consults the cache; every other component is
   forwarded. Lets cache-oblivious code (Enumerate, Relative_safety, the
   finitization check) benefit by a plain domain swap. *)
let domain c ((module D : Domain.S) as d) : Domain.t =
  (module struct
    let name = D.name
    let signature = D.signature
    let member = D.member
    let constant = D.constant
    let const_name = D.const_name
    let eval_fun = D.eval_fun
    let eval_pred = D.eval_pred
    let enumerate = D.enumerate
    let seeds = D.seeds
    let decide f = decide c d f
  end)
