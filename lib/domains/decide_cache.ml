(* Memoized decision cache.

   The Section 1.1 enumeration algorithm re-decides closely related
   closed formulas over and over: the candidate test ϕ(ā) recurs whenever
   the enumeration revisits a tuple (the active domain is scanned first
   and reappears in the domain enumeration), and harness code decides the
   same completeness sentences across runs. Keys are alpha-normalized
   before lookup, so any two alpha-equivalent sentences share one cache
   line ("hash-consed" up to bound-variable names). *)

module Formula = Fq_logic.Formula

module Key = struct
  type t = Formula.t

  let equal = Formula.equal
  let hash = Formula.hash
end

module H = Hashtbl.Make (Key)

type stats = { hits : int; misses : int; entries : int }

type t = {
  table : (bool, string) result H.t;
  lock : Mutex.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create ?(size = 256) () =
  { table = H.create size; lock = Mutex.create (); cache_hits = 0; cache_misses = 0 }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let stats c =
  locked c (fun () ->
      { hits = c.cache_hits; misses = c.cache_misses; entries = H.length c.table })

let hit_rate { hits; misses; _ } =
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)

let clear c =
  locked c (fun () ->
      H.reset c.table;
      c.cache_hits <- 0;
      c.cache_misses <- 0)

(* A verdict is cacheable when it depends only on the domain's theory:
   [Ok _] and "this formula is outside the fragment" are eternal truths,
   but a budget trip ([Budget.Exhausted] escaping through the string-error
   channel) reflects the budget that happened to be ambient at the time.
   Caching one would poison the table — a later, better-funded run (a
   resumed scan, a retry with a fresh fair share) would keep hitting the
   stale trip forever. *)
let cacheable = function
  | Ok _ -> true
  | Error e -> (
    match Fq_core.Budget.failure_of_string e with
    | Some (Fuel_exhausted | Deadline_exceeded | Cancelled | Oversize _) -> false
    | Some (Unsupported _) | None -> true)

(* The telemetry counters are the authoritative observable (they aggregate
   across every cache in a recording); the per-instance ints survive so the
   [stats] accessor keeps its historical meaning for existing callers.

   Concurrency: the table is consulted and filled under the mutex, but the
   underlying [D.decide] runs outside it — decisions can be slow (that is
   why they are cached), and holding the lock across one would serialize a
   whole worker pool on the slowest decide.  The price is that two workers
   missing on the same key may both run the decision; both writes store
   the same theory-determined verdict, so last-write-wins is sound. *)
let decide c (module D : Domain.S) f =
  let key = Formula.alpha_normalize f in
  Fq_core.Fault.hit "decide_cache.lookup";
  let cached =
    locked c (fun () ->
        match H.find_opt c.table key with
        | Some r ->
          c.cache_hits <- c.cache_hits + 1;
          Some r
        | None ->
          c.cache_misses <- c.cache_misses + 1;
          None)
  in
  match cached with
  | Some r ->
    Fq_core.Telemetry.count "decide_cache.hits";
    r
  | None ->
    Fq_core.Telemetry.count "decide_cache.misses";
    let r = D.decide f in
    if cacheable r then locked c (fun () -> H.replace c.table key r);
    r

(* A domain whose [decide] consults the cache; every other component is
   forwarded. Lets cache-oblivious code (Enumerate, Relative_safety, the
   finitization check) benefit by a plain domain swap. *)
let domain c ((module D : Domain.S) as d) : Domain.t =
  (module struct
    let name = D.name
    let signature = D.signature
    let member = D.member
    let constant = D.constant
    let const_name = D.const_name
    let eval_fun = D.eval_fun
    let eval_pred = D.eval_pred
    let enumerate = D.enumerate
    let seeds = D.seeds
    let decide f = decide c d f
  end)
