open Reach
module Budget = Fq_core.Budget
module Fault = Fq_core.Fault
module Telemetry = Fq_core.Telemetry
module Word = Fq_words.Word
module Trace = Fq_tm.Trace
module Builder = Fq_tm.Builder

(* ------------------------------------------------------------------ *)
(* Utilities                                                           *)
(* ------------------------------------------------------------------ *)

let atom_terms = function
  | Eq (t, u) -> [ t; u ]
  | Cls (_, t) -> [ t ]
  | B (_, t) -> [ t ]
  | D (_, t, u) | E (_, t, u) -> [ t; u ]

let mentions_x x = function
  | Base (Var v) | W_of (Var v) | M_of (Var v) -> v = x
  | Base (Const _) | W_of (Const _) | M_of (Const _) -> false

let atom_mentions x a = List.exists (mentions_x x) (atom_terms a)

let lit_mentions x = function
  | Atom a | Not (Atom a) -> atom_mentions x a
  | _ -> invalid_arg "lit_mentions: not a literal"

(* Ground-normalize a term: w/m of constants compute (nested applications
   were already flattened to ε at construction). *)
let ground_term = function
  | W_of (Const c) -> Base (Const (Trace.w_fn c))
  | M_of (Const c) -> Base (Const (Trace.m_fn c))
  | t -> t

let map_atom_terms fn = function
  | Eq (t, u) -> Eq (fn t, fn u)
  | Cls (c, t) -> Cls (c, fn t)
  | B (s, t) -> B (s, fn t)
  | D (i, t, u) -> D (i, fn t, fn u)
  | E (i, t, u) -> E (i, fn t, fn u)

let is_const_term = function Base (Const _) -> true | _ -> false

(* All words over {1,-} of length exactly n (2^n of them). *)
let words_of_length n =
  (* 2^n words — the exponential seat of cases W/M; one checkpoint per word
     lets a governed caller cut the expansion short. *)
  let rec go n =
    if n = 0 then [ "" ]
    else
      List.concat_map
        (fun w ->
          Budget.tick_ambient ();
          Fault.hit "qe.reach";
          Telemetry.count "qe.reach.steps";
          [ w ^ "1"; w ^ "-" ])
        (go (n - 1))
  in
  go n

let neg_qf f = Reach.nnf (Not f)

(* Possible classes of a term's value, conservatively. *)
let possible_classes = function
  | Base (Const c) -> [ Reach.cls_of_word c ]
  | Base (Var _) -> [ Machines; Inputs; Traces; Others ]
  | W_of _ -> [ Inputs ]
  | M_of _ -> [ Machines; Inputs ] (* a machine word, or ε which is an input *)

(* ------------------------------------------------------------------ *)
(* Literal normalization                                               *)
(*                                                                     *)
(* [norm ?xcls ~pos a] rewrites the literal [a] (negated when [pos] is  *)
(* false) into an equivalent quantifier-free formula whose literals are *)
(* canonical for eliminating the variable [x] assumed in class [cls]    *)
(* (when [xcls = Some (x, cls)]); x-free literals are simplified        *)
(* statically. Negated B/D/E literals become positive ones (the paper's *)
(* duality tricks); D/E atoms whose input argument is non-constant and  *)
(* involved with x expand through B_v (the Case M reduction).           *)
(* ------------------------------------------------------------------ *)

let rec norm ?xcls ~pos a : Reach.t =
  let a = map_atom_terms ground_term a in
  let on_x t = match xcls with Some (x, _) -> mentions_x x t | None -> false in
  let x_involved = List.exists on_x (atom_terms a) in
  if List.for_all is_const_term (atom_terms a) then
    match Reach.eval_atom a with
    | Ok b -> if b = pos then True else False
    | Error _ -> if pos then False else True
  else
    match a with
    | Cls (c, t) -> norm_cls ?xcls ~pos ~x_involved c t
    | Eq (t, u) -> norm_eq ?xcls ~pos ~x_involved t u
    | B (s, t) -> norm_b ?xcls ~pos ~x_involved s t
    | D (i, t, u) -> norm_de ?xcls ~pos ~x_involved ~exact:false i t u
    | E (i, t, u) -> norm_de ?xcls ~pos ~x_involved ~exact:true i t u

and norm_cls ?xcls ~pos ~x_involved c t =
  let decide b = if b = pos then True else False in
  match (xcls, t) with
  | Some (x, cls), Base (Var v) when x_involved && v = x -> decide (c = cls)
  | Some (x, Traces), W_of (Var v) when v = x -> decide (c = Inputs)
  | Some (x, Traces), M_of (Var v) when v = x -> decide (c = Machines)
  | Some (x, _), t when mentions_x x t ->
    (* w(x)/m(x) for a non-trace x is ε, an input *)
    decide (c = Inputs)
  | _, W_of (Var _) -> decide (c = Inputs)
  | _, M_of (Var y) -> (
    (* m(y) is a machine iff y is a trace, ε (an input) otherwise *)
    match c with
    | Machines -> if pos then Atom (Cls (Traces, Base (Var y))) else Not (Atom (Cls (Traces, Base (Var y))))
    | Inputs -> if pos then Not (Atom (Cls (Traces, Base (Var y)))) else Atom (Cls (Traces, Base (Var y)))
    | Traces | Others -> decide false)
  | _, t -> if pos then Atom (Cls (c, t)) else Not (Atom (Cls (c, t)))

and norm_eq ?xcls ~pos ~x_involved t u =
  let decide b = if b = pos then True else False in
  if t = u then decide true
  else
    match xcls with
    | Some (x, cls) when x_involved ->
      let xt, other = if mentions_x x t then (t, u) else (u, t) in
      if mentions_x x other then begin
        match cls with
        | Traces ->
          (* two different x-shapes: a trace, its input and its machine lie
             in pairwise disjoint classes *)
          decide false
        | Machines | Inputs | Others ->
          (* w(x) and m(x) are both ε for a non-trace x, so the two shapes
             can coincide — ε-normalize and renormalize (the recursion
             terminates: no w/m application on x survives) *)
          let eps = function
            | (W_of (Var v) | M_of (Var v)) when v = x -> Base (Const "")
            | t -> t
          in
          norm ?xcls ~pos (Eq (eps xt, eps other))
      end
      else begin
        (* For a non-trace class, w(x)/m(x) were ground-normalized... they
           were not: do it here — they equal ε. *)
        let xt =
          match (cls, xt) with
          | (Machines | Inputs | Others), (W_of _ | M_of _) -> Base (Const "")
          | _ -> xt
        in
        if not (mentions_x x xt) then norm ?xcls ~pos (Eq (xt, other))
        else
          let xclass =
            match xt with Base _ -> cls | W_of _ -> Inputs | M_of _ -> Machines
          in
          if not (List.mem xclass (possible_classes other)) then decide false
          else if pos then Atom (Eq (xt, other))
          else Not (Atom (Eq (xt, other)))
      end
    | _ -> (
      let pt = possible_classes t and pu = possible_classes u in
      if not (List.exists (fun c -> List.mem c pu) pt) then decide false
      else
        match (t, u) with
        | W_of a, M_of b | M_of b, W_of a ->
          (* equal only when both sides are ε: b is not a trace, w(a) = ε *)
          let f =
            And
              ( Not (Atom (Cls (Traces, Base b))),
                norm ~pos:true (Eq (W_of a, Base (Const ""))) )
          in
          if pos then f else neg_qf f
        | _ -> if pos then Atom (Eq (t, u)) else Not (Atom (Eq (t, u))))

and norm_b ?xcls ~pos ~x_involved:_ s t =
  let decide b = if b = pos then True else False in
  match (xcls, t) with
  | Some (x, Inputs), Base (Var v) when v = x -> norm_b_expand ~pos s t
  | Some (x, Traces), W_of (Var v) when v = x -> norm_b_expand ~pos s t
  | Some (x, (Machines | Inputs | Others)), (W_of (Var v) | M_of (Var v)) when v = x ->
    (* w(x)/m(x) = ε for non-traces *)
    norm ?xcls ~pos (B (s, Base (Const "")))
  | Some (x, _), t when mentions_x x t -> decide false
  | _, M_of (Var y) ->
    (* m(y) is an input only when ε *)
    if Reach.b_holds s "" then
      if pos then Not (Atom (Cls (Traces, Base (Var y))))
      else Atom (Cls (Traces, Base (Var y)))
    else decide false
  | _, (Base (Var _) | W_of (Var _)) ->
    if pos then Atom (B (s, t)) else Not (Atom (B (s, t)))
  | _, t -> if pos then Atom (B (s, t)) else Not (Atom (B (s, t)))

and norm_b_expand ~pos s t =
  if pos then Atom (B (s, t))
  else
    (* an input satisfies exactly one B per length *)
    disj
      (List.filter_map
         (fun s' -> if s' = s then None else Some (Atom (B (s', t))))
         (words_of_length (String.length s)))

and norm_de ?xcls ~pos ~x_involved ~exact i t u =
  let mk i t u = if exact then E (i, t, u) else D (i, t, u) in
  if not pos then begin
    (* ¬D_i(t,u) ⟺ ¬M(t) ∨ ¬W(u) ∨ ⋁_{r<i} E_r(t,u);
       ¬E_j adds the D_{j+1} disjunct. *)
    let not_machine = norm ?xcls ~pos:false (Cls (Machines, t)) in
    let not_input = norm ?xcls ~pos:false (Cls (Inputs, u)) in
    let smaller = List.init (i - 1) (fun r -> norm ?xcls ~pos:true (E (r + 1, t, u))) in
    let extra = if exact then [ norm ?xcls ~pos:true (D (i + 1, t, u)) ] else [] in
    disj ((not_machine :: not_input :: smaller) @ extra)
  end
  else begin
    (* normalize ε-valued w/m applications of a non-trace x first *)
    let fix_eps tt =
      match (xcls, tt) with
      | Some (x, (Machines | Inputs | Others)), (W_of (Var v) | M_of (Var v)) when v = x ->
        Base (Const "")
      | _ -> tt
    in
    let t = ground_term (fix_eps t) and u = ground_term (fix_eps u) in
    (* machine-side static falsities *)
    match t with
    | W_of _ -> False
    | Base (Const c) when not (Word.is_machine_shaped c) -> False
    | _ -> (
      (* the machine side involving x must be Base x (class M) or m(x)
         (class T) *)
      let machine_side_ok =
        match (xcls, t) with
        | Some (x, cls), tt when mentions_x x tt -> (
          match (cls, tt) with
          | Machines, Base (Var _) -> true
          | Traces, M_of (Var _) -> true
          | _ -> false)
        | _ -> true
      in
      if not machine_side_ok then False
      else
        match u with
        | M_of y ->
          And
            ( norm ?xcls ~pos:false (Cls (Traces, Base y)),
              norm ?xcls ~pos:true (mk i t (Base (Const ""))) )
        | Base (Const c) when not (Word.is_input c) -> False
        | Base (Const _) -> (
          match (xcls, u) with
          | Some (x, cls), uu when mentions_x x uu -> (
            ignore cls;
            ignore x;
            Atom (mk i t u))
          | _ -> Atom (mk i t u))
        | Base (Var _) | W_of _ ->
          let input_on_x =
            match (xcls, u) with
            | Some (x, cls), uu when mentions_x x uu -> (
              match (cls, uu) with
              | Inputs, Base (Var _) -> true (* case W: canonical as-is *)
              | Traces, W_of (Var _) -> false (* must expand through B *)
              | _ -> false)
            | _ -> true (* x-free input argument: canonical *)
          in
          if x_involved && not input_on_x then
            (* D_i depends only on the first i tape cells: expand the input
               argument over all padded prefixes of length i *)
            disj
              (List.map
                 (fun v ->
                   And
                     ( norm ?xcls ~pos:true (B (v, u)),
                       norm ?xcls ~pos:true (mk i t (Base (Const v))) ))
                 (words_of_length i))
          else if x_involved && (match t with Base (Var _) | M_of _ -> (match xcls with Some (x, _) -> mentions_x x t | None -> false) | _ -> false)
          then
            (* machine side on x but input non-constant: same expansion *)
            disj
              (List.map
                 (fun v ->
                   And
                     ( norm ?xcls ~pos:true (B (v, u)),
                       norm ?xcls ~pos:true (mk i t (Base (Const v))) ))
                 (words_of_length i))
          else Atom (mk i t u))
  end

(* Re-normalize every literal of a quantifier-free formula statically
   (after a substitution, say). *)
let rec renorm f =
  match f with
  | True | False -> f
  | Atom a -> norm ~pos:true a
  | Not (Atom a) -> norm ~pos:false a
  | Not g -> Reach.simplify_bool (Not (renorm g))
  | And (g, h) -> Reach.simplify_bool (And (renorm g, renorm h))
  | Or (g, h) -> Reach.simplify_bool (Or (renorm g, renorm h))
  | Exists (v, g) -> Exists (v, renorm g)
  | Forall (v, g) -> Forall (v, renorm g)

(* ------------------------------------------------------------------ *)
(* Per-class clause elimination                                        *)
(*                                                                     *)
(* Each function receives the x-literals of one DNF clause (canonical   *)
(* for its class) and the x-free literals [rest], and returns a         *)
(* quantifier-free formula equivalent to ∃x∈class. clause.              *)
(* ------------------------------------------------------------------ *)

exception Not_canonical of string

let not_canonical lit =
  raise (Not_canonical (Reach.to_string lit))

(* Substitute an arbitrary x-free term for Base-x occurrences; only legal
   when x never occurs under w/m (classes M, W, O after normalization). *)
let subst_flat x t f =
  let sub_term = function
    | Base (Var v) when v = x -> t
    | (W_of (Var v) | M_of (Var v)) when v = x ->
      raise (Not_canonical "w/m applied to a non-trace variable")
    | tt -> tt
  in
  let rec go f =
    match f with
    | True | False -> f
    | Atom a -> Atom (map_atom_terms sub_term a)
    | Not g -> Not (go g)
    | And (g, h) -> And (go g, go h)
    | Or (g, h) -> Or (go g, go h)
    | Exists _ | Forall _ -> invalid_arg "subst_flat: quantifier"
  in
  go f

let cls_formula c t = norm ~pos:true (Cls (c, t))

(* Lemma A.2: satisfiability of a D/E system on one machine with constant
   input words. *)
let system_satisfiable ds es =
  Builder.satisfiable
    (List.map (fun (i, w) -> Builder.At_least (w, i)) ds
    @ List.map (fun (j, w) -> Builder.Exactly (w, j)) es)

(* Find a positive equality Base x = t among the literals. *)
let find_x_eq x lits =
  let rec go seen = function
    | [] -> None
    | (Atom (Eq (t, u)) as lit) :: rest -> (
      let xt, other = if mentions_x x t then (t, u) else (u, t) in
      match xt with
      | Base (Var v) when v = x && not (mentions_x x other) ->
        Some (other, List.rev_append seen rest)
      | _ -> go (lit :: seen) rest)
    | lit :: rest -> go (lit :: seen) rest
  in
  go [] lits

(* --------------------------- Case M -------------------------------- *)

let eliminate_machine x xlits rest =
  match find_x_eq x xlits with
  | Some (t, others) ->
    renorm (conj (cls_formula Machines t :: subst_flat x t (conj others) :: rest))
  | None ->
    let ds = ref [] and es = ref [] in
    List.iter
      (fun lit ->
        match lit with
        | Not (Atom (Eq _)) -> () (* disequalities never block: infinitely
                                     many equivalent machine encodings *)
        | Atom (D (i, Base (Var v), Base (Const c))) when v = x -> ds := (i, c) :: !ds
        | Atom (E (i, Base (Var v), Base (Const c))) when v = x -> es := (i, c) :: !es
        | lit -> not_canonical lit)
      xlits;
    if system_satisfiable !ds !es then conj rest else False

(* --------------------------- Case W -------------------------------- *)

let eliminate_input x xlits rest =
  match find_x_eq x xlits with
  | Some (t, others) ->
    renorm (conj (cls_formula Inputs t :: subst_flat x t (conj others) :: rest))
  | None ->
    (* collect B-prefixes, D/E constraints D_i(t, x); disequalities drop
       (each padded-prefix class of inputs is infinite) *)
    let bs = ref [] and des = ref [] in
    List.iter
      (fun lit ->
        match lit with
        | Not (Atom (Eq _)) -> ()
        | Atom (B (s, Base (Var v))) when v = x -> bs := s :: !bs
        | Atom (D (i, t, Base (Var v))) when v = x && not (mentions_x x t) ->
          des := (`D, i, t) :: !des
        | Atom (E (i, t, Base (Var v))) when v = x && not (mentions_x x t) ->
          des := (`E, i, t) :: !des
        | lit -> not_canonical lit)
      xlits;
    let bound =
      List.fold_left max 1
        (List.map String.length !bs @ List.map (fun (_, i, _) -> i) !des)
    in
    (* a witness input, if any, exists in some padded-prefix class of
       length [bound]; every such class is infinite and all its members
       agree on every B/D/E literal above *)
    let case_of p =
      let b_ok = List.for_all (fun s -> Reach.b_holds s p) !bs in
      if not b_ok then False
      else
        conj
          (List.map
             (fun (kind, i, t) ->
               let a = match kind with `D -> D (i, t, Base (Const p)) | `E -> E (i, t, Base (Const p)) in
               norm ~pos:true a)
             !des)
    in
    let cases =
      List.map
        (fun p ->
          Budget.tick_ambient ();
          Fault.hit "qe.reach";
          Telemetry.count "qe.reach.steps";
          case_of p)
        (words_of_length bound)
    in
    Reach.simplify_bool (conj (disj cases :: rest))

(* --------------------------- Case O -------------------------------- *)

let eliminate_other x xlits rest =
  match find_x_eq x xlits with
  | Some (t, others) ->
    renorm (conj (cls_formula Others t :: subst_flat x t (conj others) :: rest))
  | None ->
    (* only disequalities can mention x; class O is infinite *)
    List.iter
      (fun lit -> match lit with Not (Atom (Eq _)) -> () | lit -> not_canonical lit)
      xlits;
    conj rest

(* --------------------------- Case T -------------------------------- *)

(* Substitute a base for x under w/m as well (class T). *)
let subst_trace x b f = Reach.subst_base x b f

let rec subsets = function
  | [] -> [ ([], []) ]
  | x :: rest ->
    List.concat_map
      (fun (inside, outside) -> [ (x :: inside, outside); (inside, x :: outside) ])
      (subsets rest)

let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
    List.concat_map
      (fun parts ->
        ([ x ] :: parts)
        :: List.mapi (fun i _ -> List.mapi (fun j g -> if i = j then x :: g else g) parts) parts)
      (partitions rest)

let eliminate_trace x xlits rest =
  match find_x_eq x xlits with
  | Some (t, others) -> (
    (* x = t: t must be a base (other shapes are class-infeasible and were
       normalized to False) *)
    match t with
    | Base b ->
      renorm (conj (cls_formula Traces t :: subst_trace x b (conj others) :: rest))
    | W_of _ | M_of _ -> False)
  | None ->
    (* collect the canonical shapes of the Appendix's display (2)-(7) *)
    let m_eq = ref [] and m_ne = ref [] and w_eq = ref [] and w_ne = ref [] in
    let bs = ref [] and ds = ref [] and es = ref [] and x_ne = ref [] in
    List.iter
      (fun lit ->
        match lit with
        | Not (Atom (Eq (t, u))) -> (
          let xt, other = if mentions_x x t then (t, u) else (u, t) in
          match xt with
          | Base (Var v) when v = x -> x_ne := other :: !x_ne
          | M_of (Var v) when v = x -> m_ne := other :: !m_ne
          | W_of (Var v) when v = x -> w_ne := other :: !w_ne
          | _ -> not_canonical lit)
        | Atom (Eq (t, u)) -> (
          let xt, other = if mentions_x x t then (t, u) else (u, t) in
          match xt with
          | M_of (Var v) when v = x -> m_eq := other :: !m_eq
          | W_of (Var v) when v = x -> w_eq := other :: !w_eq
          | _ -> not_canonical lit)
        | Atom (B (s, W_of (Var v))) when v = x -> bs := s :: !bs
        | Atom (D (i, M_of (Var v), Base (Const c))) when v = x -> ds := (i, c) :: !ds
        | Atom (E (i, M_of (Var v), Base (Const c))) when v = x -> es := (i, c) :: !es
        | lit -> not_canonical lit)
      xlits;
    (* multiple m(x)= / w(x)= equalities reduce to one plus x-free links *)
    let pick = function [] -> None | t :: _ -> Some t in
    let extra_links =
      (match !m_eq with
      | t :: more -> List.map (fun u -> norm ~pos:true (Eq (t, u))) more
      | [] -> [])
      @
      match !w_eq with
      | t :: more -> List.map (fun u -> norm ~pos:true (Eq (t, u))) more
      | [] -> []
    in
    let b_compatible =
      (* all B-prefixes pairwise agree on overlaps *)
      let rec pairs = function
        | [] -> true
        | s :: rest ->
          List.for_all
            (fun s' ->
              let n = min (String.length s) (String.length s') in
              let rec chk i = i >= n || (s.[i] = s'.[i] && chk (i + 1)) in
              chk 0)
            rest
          && pairs rest
      in
      pairs !bs
    in
    if not b_compatible then False
    else begin
      let de_system_ok = system_satisfiable !ds !es in
      match (pick !m_eq, pick !w_eq) with
      | None, None ->
        (* T-1: machine, input and trace word are all free; Lemma A.2
           decides the D/E system, everything else is satisfiable *)
        if de_system_ok then conj (extra_links @ rest) else False
      | Some t, None ->
        (* T-2: machine fixed to t; any machine has at least one trace on
           any input, so only the substituted x-free residue remains *)
        let subst_m = List.map (fun u -> norm ~pos:false (Eq (t, u))) !m_ne in
        let des =
          List.map (fun (i, c) -> norm ~pos:true (D (i, t, Base (Const c)))) !ds
          @ List.map (fun (i, c) -> norm ~pos:true (E (i, t, Base (Const c)))) !es
        in
        renorm (conj ((cls_formula Machines t :: extra_links) @ subst_m @ des @ rest))
      | None, Some v ->
        (* T-3: input fixed to v; machines remain free, so Lemma A.2
           decides the D/E system and w-constraints substitute *)
        if not de_system_ok then False
        else
          let subst_w =
            List.map (fun u -> norm ~pos:false (Eq (v, u))) !w_ne
            @ List.map (fun s -> norm ~pos:true (B (s, v))) !bs
          in
          renorm (conj ((cls_formula Inputs v :: extra_links) @ subst_w @ rest))
      | Some t, Some v ->
        let () = x_ne := List.sort_uniq compare !x_ne in
        (* T-4: both fixed; x ranges over traces of t in v avoiding the
           excluded terms p ∈ x_ne. Such an x exists iff t has strictly
           more traces in v than the number of distinct excluded values
           that are themselves traces of t in v. Expand over which
           excluded terms are such traces and over their equality
           pattern. *)
        let subst_m = List.map (fun u -> norm ~pos:false (Eq (t, u))) !m_ne in
        let subst_w =
          List.map (fun u -> norm ~pos:false (Eq (v, u))) !w_ne
          @ List.map (fun s -> norm ~pos:true (B (s, v))) !bs
        in
        let des =
          List.map (fun (i, c) -> norm ~pos:true (D (i, t, Base (Const c)))) !ds
          @ List.map (fun (i, c) -> norm ~pos:true (E (i, t, Base (Const c)))) !es
        in
        let is_trace_of p =
          conj
            [ norm ~pos:true (Cls (Traces, p));
              norm ~pos:true (Eq (Reach.apply_m p, t));
              norm ~pos:true (Eq (Reach.apply_w p, v)) ]
        in
        let not_trace_of p =
          disj
            [ norm ~pos:false (Cls (Traces, p));
              norm ~pos:false (Eq (Reach.apply_m p, t));
              norm ~pos:false (Eq (Reach.apply_w p, v)) ]
        in
        (* Fast path: when the machine, the input and an excluded term are
           all constants, whether that term is one of the traces of t in v
           is a ground fact — count it directly instead of expanding the
           subset/partition disjunction over it. This keeps the Section 1.1
           completeness checks (whose exclusions are all ground) linear. *)
        let ground_ok =
          match (t, v) with
          | Base (Const _), Base (Const _) -> true
          | _ -> false
        in
        let ground_excluded, symbolic =
          List.partition
            (fun p -> ground_ok && match p with Base (Const _) -> true | _ -> false)
            !x_ne
        in
        let ground_count =
          match (t, v) with
          | Base (Const tc), Base (Const vc) ->
            List.filter_map (function Base (Const pc) -> Some pc | _ -> None) ground_excluded
            |> List.sort_uniq compare
            |> List.filter (fun pc -> Trace.p_pred tc vc pc)
            |> List.length
          | _ -> 0
        in
        let ground_words =
          List.filter_map (function Base (Const pc) -> Some pc | _ -> None) ground_excluded
        in
        let counting =
          disj
            (List.concat_map
               (fun (inside, outside) ->
                 List.map
                   (fun parts ->
                     let eqs =
                       List.concat_map
                         (fun group ->
                           match group with
                           | [] -> []
                           | g0 :: grest ->
                             List.map (fun g -> norm ~pos:true (Eq (g0, g))) grest)
                         parts
                     in
                     let reps = List.filter_map (function [] -> None | g0 :: _ -> Some g0) parts in
                     let rec distinct = function
                       | [] -> []
                       | r :: rs ->
                         List.map (fun r' -> norm ~pos:false (Eq (r, r'))) rs @ distinct rs
                     in
                     (* symbolic representatives must not collide with the
                        directly-counted ground exclusions *)
                     let apart_from_ground =
                       List.concat_map
                         (fun r ->
                           List.map
                             (fun pg -> norm ~pos:false (Eq (r, Base (Const pg))))
                             ground_words)
                         reps
                     in
                     conj
                       (List.map is_trace_of inside
                       @ List.map not_trace_of outside
                       @ eqs @ distinct reps @ apart_from_ground
                       @ [ norm ~pos:true
                             (D (List.length parts + ground_count + 1, t, v)) ]))
                   (partitions inside))
               (subsets symbolic))
        in
        renorm
          (conj
             ((cls_formula Machines t :: cls_formula Inputs v :: extra_links)
             @ subst_m @ subst_w @ des @ [ counting ] @ rest))
    end

let _ = subsets (* used above *)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let rec eliminate_exists x g =
  let g = Reach.simplify_bool g in
  if not (List.mem x (Reach.free_vars g)) then g
  else begin
    let per_class cls eliminate =
      (* normalize under the class assumption, then DNF *)
      let normalized =
        renorm_with (Some (x, cls)) g
      in
      let clauses = Reach.dnf (Reach.nnf (Reach.simplify_bool normalized)) in
      disj
        (List.map
           (fun lits ->
             (* deduplicate literals and prune contradictory clauses: the
                DNF expansion repeats literals heavily, and the Case T-4
                expansion is exponential in the number of distinct
                disequalities *)
             Budget.tick_ambient ();
             Fault.hit "qe.reach";
             Telemetry.count "qe.reach.steps";
             let lits = List.sort_uniq compare lits in
             let contradictory =
               List.exists
                 (fun l -> match l with Not g -> List.mem g lits | _ -> false)
                 lits
             in
             if contradictory then False
             else
               let xlits, rest = List.partition (lit_mentions x) lits in
               eliminate x xlits rest)
           clauses)
    in
    Reach.simplify_bool
      (disj
         [ per_class Machines eliminate_machine;
           per_class Inputs eliminate_input;
           per_class Traces eliminate_trace;
           per_class Others eliminate_other ])
  end

and renorm_with xcls f =
  match f with
  | True | False -> f
  | Atom a -> norm ?xcls ~pos:true a
  | Not (Atom a) -> norm ?xcls ~pos:false a
  | Not g -> Reach.simplify_bool (Not (renorm_with xcls g))
  | And (g, h) -> Reach.simplify_bool (And (renorm_with xcls g, renorm_with xcls h))
  | Or (g, h) -> Reach.simplify_bool (Or (renorm_with xcls g, renorm_with xcls h))
  | Exists _ | Forall _ -> invalid_arg "renorm_with: quantifier"

let eliminate f =
  let rec go f =
    match Reach.nnf f with
    | (True | False | Atom _ | Not _) as f -> f
    | And (g, h) -> And (go g, go h)
    | Or (g, h) -> Or (go g, go h)
    | Exists (x, g) -> eliminate_exists x (go g)
    | Forall (x, g) -> neg_qf (eliminate_exists x (neg_qf (go g)))
  in
  Reach.simplify_bool (go (Reach.nnf f))

let decide ?budget f =
  Budget.protect ?budget (fun () ->
      Telemetry.with_span "qe.reach" @@ fun () ->
      if not (Reach.is_sentence f) then
        Error
          (Printf.sprintf "formula has free variables: %s"
             (String.concat ", " (Reach.free_vars f)))
      else
        match eliminate f with
        | qf -> Reach.eval_ground (renorm qf)
        | exception Not_canonical msg -> Error ("internal: non-canonical literal: " ^ msg))

let decide_formula ?budget f =
  Budget.protect ?budget (fun () -> Result.bind (Reach.of_formula f) (fun r -> decide r))
