(** The abstraction the paper calls a {e domain}: a countable infinite set
    together with interpreted functions and relations (Section 1), packaged
    with the two effectiveness properties the paper singles out:

    - {e recursiveness}: [eval_pred]/[eval_fun] compute the interpreted
      symbols (Section 1.1's first requirement);
    - {e decidability}: [decide] decides pure-domain sentences (the second
      requirement — "this property is, in effect, equivalent to the
      ability to answer queries effectively").

    Domains are first-class modules over the universal value type
    {!Fq_db.Value.t}. *)

module type S = sig
  val name : string

  val signature : Fq_logic.Signature.t
  (** The interpreted predicate and function symbols (equality excluded:
      it is always available). *)

  val member : Fq_db.Value.t -> bool
  (** Membership in the domain's universe. *)

  val constant : string -> Fq_db.Value.t option
  (** Interpretation of a constant symbol ([None] when the symbol denotes
      no element — e.g. a malformed numeral). Scheme constants ([@]-named)
      are interpreted by states, never by domains. *)

  val const_name : Fq_db.Value.t -> string
  (** A constant symbol denoting the given element — the paper's standing
      assumption "we have constants for all the elements of the domain".
      Inverse of {!constant} on members. *)

  val eval_fun : string -> Fq_db.Value.t list -> Fq_db.Value.t option
  (** Computes a domain function on member values; [None] if the symbol or
      arity is unknown. *)

  val eval_pred : string -> Fq_db.Value.t list -> bool option
  (** Computes a domain predicate on member values; [None] if unknown.
      Equality need not be handled here. *)

  val enumerate : unit -> Fq_db.Value.t Seq.t
  (** A recursive enumeration of the (countable) universe, used by the
      Section 1.1 query-answering algorithm. *)

  val seeds : Fq_db.Value.t list -> Fq_db.Value.t Seq.t
  (** Promising candidate answers derived from the given active-domain
      values, tried by the Section 1.1 algorithm before the plain
      enumeration. Purely an ordering hint — correctness never depends on
      it — but essential in practice for domains like [T], where the
      answers to [P(M, c, x)] (trace words) appear astronomically late in
      the word enumeration. Most domains return the empty sequence. *)

  val decide : Fq_logic.Formula.t -> (bool, string) result
  (** Decides a pure-domain {e sentence}. [Error] on non-sentences,
      formulas outside the signature, or (for domains without a decidable
      theory) whenever the procedure cannot answer. *)
end

type t = (module S)

(** {1 Generic helpers} *)

val eval_ground : t -> Fq_logic.Term.t -> (Fq_db.Value.t, string) result
(** Evaluates a ground term: constants via [constant], functions via
    [eval_fun]. *)

val holds_qf : t -> env:(string * Fq_db.Value.t) list -> Fq_logic.Formula.t -> (bool, string) result
(** Evaluates a quantifier-free formula under a variable assignment, using
    the domain's recursive predicates and functions. This is the
    "recursiveness" side of the domain: no decision procedure involved.
    [Error] on quantifiers, database atoms, or unknown symbols. *)

val with_decide : t -> (Fq_logic.Formula.t -> (bool, string) result) -> t
(** [with_decide d decide] is [d] with its decision procedure replaced;
    every other component forwards.  The hook for wrapping a domain in a
    cache, a circuit breaker ({!Fq_core.Supervisor.Breaker}), or a fault
    shim without touching the domain itself. *)

val check_pure_sentence : t -> Fq_logic.Formula.t -> (unit, string) result
(** The precondition of {!S.decide}: a sentence over the domain signature
    with no database relations or scheme constants. *)
