(** Quantifier elimination for the Reach Theory of Traces — the paper's
    Theorem A.3, yielding decidability of the theory of the trace domain
    [T] (Corollary A.4).

    The elimination follows the Appendix: work innermost-first; put the
    matrix in disjunctive normal form; specialize the quantified variable
    to one of the four classes [M]/[W]/[T]/[O]; normalize every literal
    under that class assumption (negated [B]/[D]/[E] atoms expand into
    positive ones, [D]/[E] atoms with non-constant input arguments expand
    through the [B_v] predicates — the paper's Case M trick); then
    eliminate:

    - {b Case M}: the [D]/[E] system on the machine variable is checked by
      the explicit Lemma A.2 construction ({!Fq_tm.Builder}); disequalities
      never block because behaviourally equivalent machines abound.
    - {b Case W}: a witness input, if any, exists among the words of
      bounded length; the formula becomes a finite disjunction over
      padded prefixes.
    - {b Case T}: the paper's four sub-cases T-1..T-4, keyed on which of
      [m(x) = t], [w(x) = v] are present; T-4 reduces counting distinct
      excluded traces to a [D_{r+1}(t, v)] atom.
    - {b Case O}: only disequalities can mention the variable; the class is
      infinite, so they are dropped. *)

val eliminate : Reach.t -> Reach.t
(** A quantifier-free equivalent (free variables allowed). The exponential
    expansions (the 2^n word disjunctions of cases W/M, and every DNF
    clause) checkpoint against the ambient {!Fq_core.Budget}, so a governed
    caller can cut them short. *)

val decide : ?budget:Fq_core.Budget.t -> Reach.t -> (bool, string) result
(** Truth of a Reach-theory sentence: eliminate, then evaluate the ground
    residue with bounded Turing-machine simulation. Governor trips come
    back as the structured [Error] strings of
    {!Fq_core.Budget.error_string}, never as exceptions. *)

val decide_formula :
  ?budget:Fq_core.Budget.t -> Fq_logic.Formula.t -> (bool, string) result
(** Truth of a sentence over the {e original} signature of [T]
    ([P], [=], word constants): translate via {!Reach.of_formula}, then
    {!decide}. This is the paper's Corollary A.4. *)
