module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Transform = Fq_logic.Transform
module Signature = Fq_logic.Signature
module Value = Fq_db.Value
module Budget = Fq_core.Budget
module Fault = Fq_core.Fault
module Telemetry = Fq_core.Telemetry

let name = "equality"
let signature = Signature.make ~name ()

(* The universe is the set of printable-ASCII strings — any countably
   infinite set serves; this one keeps every element nameable by a quoted
   constant and the enumeration surjective. *)
let printable c = c >= ' ' && c <= '~'
let member v =
  match Value.as_str v with Some s -> String.for_all printable s | None -> false

let constant c = if String.for_all printable c then Some (Value.str c) else None
let const_name v = match v with Value.Str s -> s | Value.Int n -> Fq_numeric.Bigint.to_string n
let eval_fun _ _ = None
let eval_pred _ _ = None

let printable_alphabet = String.init 95 (fun i -> Char.chr (32 + i))
let enumerate () = Seq.map Value.str (Fq_words.Word.enumerate_over printable_alphabet ())

(* Quantifier elimination for an infinite set with equality: in a
   conjunction of literals, an equality x = t lets us substitute t for x;
   otherwise x is constrained only by finitely many disequalities, which an
   infinite domain always satisfies. *)
let exists_conj x lits =
  Budget.tick_ambient ();
  Fault.hit "qe.eq";
  Telemetry.count "qe.eq.steps";
  let is_x = function Term.Var v -> v = x | _ -> false in
  let rec find_eq seen = function
    | [] -> None
    | Formula.Eq (t, u) :: rest when is_x t && not (is_x u) ->
      Some (u, List.rev_append seen rest)
    | Formula.Eq (t, u) :: rest when is_x u && not (is_x t) ->
      Some (t, List.rev_append seen rest)
    | lit :: rest -> find_eq (lit :: seen) rest
  in
  match find_eq [] lits with
  | Some (t, rest) -> Formula.conj (List.map (Formula.subst [ (x, t) ]) rest)
  | None ->
    (* Only disequalities involve x (an equality x = x was simplified away);
       drop them — satisfiable in an infinite domain — and keep the rest. *)
    let mentions_x lit = Formula.Sset.mem x (Formula.free_var_set lit) in
    Formula.conj (List.filter (fun l -> not (mentions_x l)) lits)

let qe f =
  if Signature.is_pure signature f then
    Ok
      (Telemetry.with_span "qe.eq" (fun () ->
           Transform.eliminate_quantifiers ~exists_conj f))
  else Error "not a pure equality-domain formula"

let decide f =
  if not (Formula.is_sentence f) then
    Error
      (Printf.sprintf "formula has free variables: %s"
         (String.concat ", " (Formula.free_vars f)))
  else if not (Signature.is_pure signature f) then
    Error "not a pure equality-domain formula"
  else begin
    Telemetry.with_span "qe.eq" @@ fun () ->
    let qf = Transform.eliminate_quantifiers ~exists_conj f in
    (* A closed quantifier-free pure-equality formula only contains ground
       equalities between constants. *)
    let rec eval = function
      | Formula.True -> Ok true
      | Formula.False -> Ok false
      | Formula.Eq (Term.Const a, Term.Const b) -> Ok (String.equal a b)
      | Formula.Not g -> Result.map not (eval g)
      | Formula.And (g, h) -> Result.bind (eval g) (fun a -> if a then eval h else Ok false)
      | Formula.Or (g, h) -> Result.bind (eval g) (fun a -> if a then Ok true else eval h)
      | Formula.Imp (g, h) -> Result.bind (eval g) (fun a -> if a then eval h else Ok true)
      | Formula.Iff (g, h) ->
        Result.bind (eval g) (fun a -> Result.map (fun b -> a = b) (eval h))
      | f -> Error (Printf.sprintf "unexpected residue after QE: %s" (Formula.to_string f))
    in
    eval qf
  end

let seeds _ = Seq.empty
