module B = Fq_numeric.Bigint
module Budget = Fq_core.Budget
module Fault = Fq_core.Fault
module Telemetry = Fq_core.Telemetry
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Transform = Fq_logic.Transform
module Signature = Fq_logic.Signature
module Value = Fq_db.Value

let name = "nat_succ"

let signature = Signature.make ~name ~funs:[ ("s", 1) ] ()

let member v = match Value.as_int v with Some n -> B.sign n >= 0 | None -> false
let is_nat_numeral s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s
let constant c = if is_nat_numeral c then Some (Value.big (B.of_string c)) else None
let const_name v = match v with Value.Int n -> B.to_string n | Value.Str s -> s

let eval_fun f args =
  match (f, List.filter_map Value.as_int args) with
  | "s", [ a ] when List.length args = 1 -> Some (Value.big (B.succ a))
  | _ -> None

let eval_pred _ _ = None
let enumerate () = Seq.map Value.int (Seq.ints 0)

(* --------------- offset terms, as in the paper: y^(n) --------------- *)

type ot = { base : string option; off : B.t }
(* [base = None]: the numeral [off] (must be >= 0 for a real element);
   [base = Some y]: the term s^off(y), where [off] may temporarily be
   negative during elimination (the paper's y^(-n)). *)

exception Unsupported of string

let rec ot_of_term = function
  | Term.Var v -> { base = Some v; off = B.zero }
  | Term.Const c when is_nat_numeral c -> { base = None; off = B.of_string c }
  | Term.Const c -> raise (Unsupported (Printf.sprintf "constant %S" c))
  | Term.App ("s", [ t ]) ->
    let o = ot_of_term t in
    { o with off = B.succ o.off }
  | Term.App (f, args) -> raise (Unsupported (Printf.sprintf "term %s/%d" f (List.length args)))

let rec iterate_s n t = if n <= 0 then t else iterate_s (n - 1) (Term.App ("s", [ t ]))

let term_of_ot { base; off } =
  match base with
  | None -> Term.Const (B.to_string off)
  | Some v ->
    let n =
      match B.to_int_opt off with
      | Some n when n >= 0 -> n
      | _ -> raise (Unsupported "negative successor offset in output")
    in
    iterate_s n (Term.Var v)

type atom =
  | Eq of ot * ot
  | Ne of ot * ot

let atom_of_literal = function
  | Formula.Eq (t, u) -> Eq (ot_of_term t, ot_of_term u)
  | Formula.Not (Formula.Eq (t, u)) -> Ne (ot_of_term t, ot_of_term u)
  | f -> raise (Unsupported (Printf.sprintf "literal %s" (Formula.to_string f)))

(* Normalize so both offsets are nonnegative and minimal, then residualize.
   s^a(y) = s^b(z) ⟺ s^(a-m)(y) = s^(b-m)(z) with m = min a b — sound over
   ℕ because successor is injective; conversely equal terms need equal
   "depth" relative to their bases. For a numeral side, s^a(y) = n means
   y = n - a, false when n < a. *)
let formula_of_atom a =
  let mk eq t u = if eq then Formula.Eq (t, u) else Formula.neq t u in
  let resolve eq x y =
    match (x.base, y.base) with
    | None, None -> if B.equal x.off y.off = eq then Formula.True else Formula.False
    | Some v, Some w when v = w ->
      if B.equal x.off y.off = eq then Formula.True else Formula.False
    | Some _, Some _ ->
      let m = B.min x.off y.off in
      mk eq
        (term_of_ot { x with off = B.sub x.off m })
        (term_of_ot { y with off = B.sub y.off m })
    | Some _, None ->
      (* s^a(v) = n: v = n - a, impossible when n < a *)
      if B.compare y.off x.off < 0 then if eq then Formula.False else Formula.True
      else mk eq (term_of_ot { x with off = B.zero }) (Term.Const (B.to_string (B.sub y.off x.off)))
    | None, Some _ ->
      if B.compare x.off y.off < 0 then if eq then Formula.False else Formula.True
      else mk eq (Term.Const (B.to_string (B.sub x.off y.off))) (term_of_ot { y with off = B.zero })
  in
  match a with
  | Eq (t, u) -> resolve true t u
  | Ne (t, u) -> resolve false t u

let mentions x (o : ot) = o.base = Some x

let subst_atom x c = function
  | Eq (t, u) -> Eq ((if mentions x t then { base = c.base; off = B.add c.off t.off } else t),
                     if mentions x u then { base = c.base; off = B.add c.off u.off } else u)
  | Ne (t, u) -> Ne ((if mentions x t then { base = c.base; off = B.add c.off t.off } else t),
                     if mentions x u then { base = c.base; off = B.add c.off u.off } else u)

(* The paper's elimination for ∃x over a conjunction of literals. *)
let exists_conj x lits =
  Budget.tick_ambient ();
  Fault.hit "qe.nat_succ";
  Telemetry.count "qe.nat_succ.steps";
  let atoms = List.map atom_of_literal lits in
  (* Split atoms with x on both sides: ground in the offset difference. *)
  let both, atoms =
    List.partition
      (fun a -> match a with Eq (t, u) | Ne (t, u) -> mentions x t && mentions x u)
      atoms
  in
  let both_ok =
    List.for_all
      (fun a ->
        match a with
        | Eq (t, u) -> B.equal t.off u.off
        | Ne (t, u) -> not (B.equal t.off u.off))
      both
  in
  if not both_ok then Formula.False
  else
    let rec find_eq seen = function
      | [] -> None
      | Eq (t, u) :: rest when mentions x t && not (mentions x u) ->
        Some ({ base = u.base; off = B.sub u.off t.off }, List.rev_append seen rest)
      | Eq (t, u) :: rest when mentions x u && not (mentions x t) ->
        Some ({ base = t.base; off = B.sub t.off u.off }, List.rev_append seen rest)
      | a :: rest -> find_eq (a :: seen) rest
    in
    match find_eq [] atoms with
    | Some (c, rest) ->
      (* x := c. When c = s^(-n)(y), add the paper's guards
         y ≠ 0 ∧ … ∧ y ≠ n-1; when c is a negative numeral, fail. *)
      let guards =
        if B.sign c.off >= 0 then []
        else
          match c.base with
          | None -> [ Formula.False ]
          | Some y ->
            let n =
              match B.to_int_opt (B.neg c.off) with
              | Some n -> n
              | None -> raise (Unsupported "huge negative offset")
            in
            List.init n (fun i -> Formula.neq (Term.Var y) (Term.Const (string_of_int i)))
      in
      Formula.conj (guards @ List.map (fun a -> formula_of_atom (subst_atom x c a)) rest)
    | None ->
      (* Only disequalities constrain x: each excludes at most one value,
         so the infinite domain always has a witness. Drop them. *)
      let rest =
        List.filter (fun a -> match a with Eq (t, u) | Ne (t, u) -> not (mentions x t || mentions x u)) atoms
      in
      Formula.conj (List.map formula_of_atom rest)

let qe ?budget f =
  Budget.protect ?budget (fun () ->
      Telemetry.with_span "qe.nat_succ" @@ fun () ->
      if not (Signature.is_pure signature f) then Error "not a pure N' formula"
      else
        match Transform.eliminate_quantifiers ~exists_conj f with
        | qf -> Ok qf
        | exception Unsupported msg -> Error ("unsupported construct: " ^ msg))

let decide f =
  Budget.protect (fun () ->
  if not (Formula.is_sentence f) then
    Error
      (Printf.sprintf "formula has free variables: %s"
         (String.concat ", " (Formula.free_vars f)))
  else
    Result.bind (qe f) (fun qf ->
        let rec eval = function
          | Formula.True -> Ok true
          | Formula.False -> Ok false
          | Formula.Not g -> Result.map not (eval g)
          | Formula.And (g, h) -> Result.bind (eval g) (fun a -> if a then eval h else Ok false)
          | Formula.Or (g, h) -> Result.bind (eval g) (fun a -> if a then Ok true else eval h)
          | (Formula.Atom _ | Formula.Eq _) as a -> (
            match formula_of_atom (atom_of_literal a) with
            | Formula.True -> Ok true
            | Formula.False -> Ok false
            | f -> Error (Printf.sprintf "non-ground residue: %s" (Formula.to_string f)))
          | f -> Error (Printf.sprintf "unexpected residue: %s" (Formula.to_string f))
        in
        eval qf))

(* Offsets in the QE output stay within 2^q of the input's offsets: each
   elimination step at most doubles... conservatively, each of the q
   eliminations can add the current maximal offset, so (max_off + 1) * 2^q
   bounds everything. *)
let qe_offset_bound f =
  let rec max_off = function
    | Term.App ("s", [ t ]) -> 1 + max_off t
    | Term.App (_, args) -> List.fold_left (fun m t -> max m (max_off t)) 0 args
    | Term.Var _ | Term.Const _ -> 0
  in
  let rec formula_off = function
    | Formula.True | Formula.False -> 0
    | Formula.Atom (_, ts) -> List.fold_left (fun m t -> max m (max_off t)) 0 ts
    | Formula.Eq (t, u) -> max (max_off t) (max_off u)
    | Formula.Not g -> formula_off g
    | Formula.And (g, h) | Formula.Or (g, h) | Formula.Imp (g, h) | Formula.Iff (g, h) ->
      max (formula_off g) (formula_off h)
    | Formula.Exists (_, g) | Formula.Forall (_, g) -> formula_off g
  in
  let q = Formula.quantifier_depth f in
  let base = formula_off f + 1 in
  let rec pow2 n = if n <= 0 then 1 else 2 * pow2 (n - 1) in
  base * pow2 q

let seeds _ = Seq.empty
