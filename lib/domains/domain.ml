module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Signature = Fq_logic.Signature
module Value = Fq_db.Value

module type S = sig
  val name : string
  val signature : Signature.t
  val member : Value.t -> bool
  val constant : string -> Value.t option
  val const_name : Value.t -> string
  val eval_fun : string -> Value.t list -> Value.t option
  val eval_pred : string -> Value.t list -> bool option
  val enumerate : unit -> Value.t Seq.t
  val seeds : Value.t list -> Value.t Seq.t
  val decide : Formula.t -> (bool, string) result
end

type t = (module S)

let ( let* ) = Result.bind

let rec eval_ground_env (module D : S) env t =
  match t with
  | Term.Var v -> (
    match List.assoc_opt v env with
    | Some value -> Ok value
    | None -> Error (Printf.sprintf "unbound variable %s" v))
  | Term.Const c -> (
    match D.constant c with
    | Some value -> Ok value
    | None -> Error (Printf.sprintf "constant %S has no %s interpretation" c D.name))
  | Term.App (f, args) ->
    let* values = eval_args (module D : S) env args in
    (match D.eval_fun f values with
    | Some value -> Ok value
    | None -> Error (Printf.sprintf "no %s function %s/%d" D.name f (List.length args)))

and eval_args d env = function
  | [] -> Ok []
  | t :: rest ->
    let* v = eval_ground_env d env t in
    let* vs = eval_args d env rest in
    Ok (v :: vs)

let eval_ground d t = eval_ground_env d [] t

let holds_qf (module D : S) ~env f =
  let rec go f =
    match f with
    | Formula.True -> Ok true
    | Formula.False -> Ok false
    | Formula.Eq (t, u) ->
      let* a = eval_ground_env (module D : S) env t in
      let* b = eval_ground_env (module D : S) env u in
      Ok (Value.equal a b)
    | Formula.Atom (p, args) ->
      let* values = eval_args (module D : S) env args in
      (match D.eval_pred p values with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "no %s predicate %s/%d" D.name p (List.length args)))
    | Formula.Not g ->
      let* b = go g in
      Ok (not b)
    | Formula.And (g, h) ->
      let* a = go g in
      if not a then Ok false else go h
    | Formula.Or (g, h) ->
      let* a = go g in
      if a then Ok true else go h
    | Formula.Imp (g, h) ->
      let* a = go g in
      if not a then Ok true else go h
    | Formula.Iff (g, h) ->
      let* a = go g in
      let* b = go h in
      Ok (a = b)
    | Formula.Exists _ | Formula.Forall _ ->
      Error "holds_qf: quantifiers require a decision procedure"
  in
  go f

let with_decide (module D : S) decide : t =
  (module struct
    let name = D.name
    let signature = D.signature
    let member = D.member
    let constant = D.constant
    let const_name = D.const_name
    let eval_fun = D.eval_fun
    let eval_pred = D.eval_pred
    let enumerate = D.enumerate
    let seeds = D.seeds
    let decide = decide
  end)

let check_pure_sentence (module D : S) f =
  if not (Formula.is_sentence f) then
    Error (Printf.sprintf "formula has free variables: %s" (String.concat ", " (Formula.free_vars f)))
  else if not (Signature.is_pure D.signature f) then
    Error (Printf.sprintf "formula is not a pure %s domain formula" D.name)
  else Ok ()
