module B = Fq_numeric.Bigint
module Budget = Fq_core.Budget
module Fault = Fq_core.Fault
module Telemetry = Fq_core.Telemetry
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Transform = Fq_logic.Transform
module Signature = Fq_logic.Signature
module Value = Fq_db.Value

let name = "nat_order"

let signature =
  Signature.make ~name
    ~preds:[ ("<", 2); ("<=", 2); (">", 2); (">=", 2) ]
    ~funs:[ ("+", 2); ("s", 1) ]
    ()

let member v = match Value.as_int v with Some n -> B.sign n >= 0 | None -> false
let is_nat_numeral s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s
let constant c = if is_nat_numeral c then Some (Value.big (B.of_string c)) else None
let const_name v = match v with Value.Int n -> B.to_string n | Value.Str s -> s

let eval_fun f args =
  match (f, List.filter_map Value.as_int args) with
  | "+", [ a; b ] when List.length args = 2 -> Some (Value.big (B.add a b))
  | "s", [ a ] when List.length args = 1 -> Some (Value.big (B.succ a))
  | _ -> None

let eval_pred p args =
  match (p, List.filter_map Value.as_int args) with
  | "<", [ a; b ] when List.length args = 2 -> Some (B.compare a b < 0)
  | "<=", [ a; b ] when List.length args = 2 -> Some (B.compare a b <= 0)
  | ">", [ a; b ] when List.length args = 2 -> Some (B.compare a b > 0)
  | ">=", [ a; b ] when List.length args = 2 -> Some (B.compare a b >= 0)
  | _ -> None

let enumerate () = Seq.map Value.int (Seq.ints 0)

(* ------------------- offset terms: base + integer ------------------- *)

(* Internal term language of the elimination: an optional variable plus an
   integer offset (offsets may go negative during substitution; variables
   themselves range over ℕ, and candidates carry 0 <= _ guards). *)
type ot = { base : string option; off : B.t }

exception Unsupported of string

let rec ot_of_term = function
  | Term.Var v -> { base = Some v; off = B.zero }
  | Term.Const c when is_nat_numeral c || (c <> "" && c.[0] = '-' && is_nat_numeral (String.sub c 1 (String.length c - 1))) ->
    { base = None; off = B.of_string c }
  | Term.Const c -> raise (Unsupported (Printf.sprintf "constant %S" c))
  | Term.App ("s", [ t ]) ->
    let o = ot_of_term t in
    { o with off = B.succ o.off }
  | Term.App ("+", [ t; Term.Const c ]) when is_nat_numeral c ->
    let o = ot_of_term t in
    { o with off = B.add o.off (B.of_string c) }
  | Term.App ("+", [ Term.Const c; t ]) when is_nat_numeral c ->
    let o = ot_of_term t in
    { o with off = B.add o.off (B.of_string c) }
  | Term.App (f, args) -> raise (Unsupported (Printf.sprintf "term %s/%d" f (List.length args)))

let term_of_ot { base; off } =
  match base with
  | None -> Term.Const (B.to_string off)
  | Some v ->
    if B.is_zero off then Term.Var v
    else Term.App ("+", [ Term.Var v; Term.Const (B.to_string off) ])

let ot_plus o k = { o with off = B.add o.off k }

(* Substitute candidate [c] for variable [x] in an offset term. *)
let ot_subst x c o =
  if o.base = Some x then { base = c.base; off = B.add c.off o.off } else o

(* ------------------------- internal atoms -------------------------- *)

type atom =
  | Lt of ot * ot
  | Eq of ot * ot
  | Ne of ot * ot

let atom_of_literal lit =
  match lit with
  | Formula.Eq (t, u) -> Eq (ot_of_term t, ot_of_term u)
  | Formula.Not (Formula.Eq (t, u)) -> Ne (ot_of_term t, ot_of_term u)
  | Formula.Atom ("<", [ t; u ]) -> Lt (ot_of_term t, ot_of_term u)
  | Formula.Not (Formula.Atom ("<", [ t; u ])) ->
    (* ¬(t < u) ⟺ u ≤ t ⟺ u < t + 1 *)
    Lt (ot_of_term u, ot_plus (ot_of_term t) B.one)
  | Formula.Atom ("<=", [ t; u ]) -> Lt (ot_of_term t, ot_plus (ot_of_term u) B.one)
  | Formula.Not (Formula.Atom ("<=", [ t; u ])) -> Lt (ot_of_term u, ot_of_term t)
  | Formula.Atom (">", [ t; u ]) -> Lt (ot_of_term u, ot_of_term t)
  | Formula.Not (Formula.Atom (">", [ t; u ])) -> Lt (ot_of_term t, ot_plus (ot_of_term u) B.one)
  | Formula.Atom (">=", [ t; u ]) -> Lt (ot_of_term u, ot_plus (ot_of_term t) B.one)
  | Formula.Not (Formula.Atom (">=", [ t; u ])) -> Lt (ot_of_term t, ot_of_term u)
  | f -> raise (Unsupported (Printf.sprintf "literal %s" (Formula.to_string f)))

(* Evaluate or residualize an atom back to a formula. *)
let formula_of_atom a =
  let ground cmp a b = if cmp (B.compare a b) 0 then Formula.True else Formula.False in
  match a with
  | Lt (t, u) when t.base = None && u.base = None -> ground ( < ) t.off u.off
  | Eq (t, u) when t.base = None && u.base = None -> ground ( = ) t.off u.off
  | Ne (t, u) when t.base = None && u.base = None -> ground ( <> ) t.off u.off
  | Lt (t, u) when t.base = u.base -> if B.compare t.off u.off < 0 then Formula.True else Formula.False
  | Eq (t, u) when t.base = u.base -> if B.equal t.off u.off then Formula.True else Formula.False
  | Ne (t, u) when t.base = u.base -> if B.equal t.off u.off then Formula.False else Formula.True
  | Lt (t, u) -> Formula.Atom ("<", [ term_of_ot t; term_of_ot u ])
  | Eq (t, u) -> Formula.Eq (term_of_ot t, term_of_ot u)
  | Ne (t, u) -> Formula.neq (term_of_ot t) (term_of_ot u)

let mentions x (o : ot) = o.base = Some x

let subst_atom x c = function
  | Lt (t, u) -> Lt (ot_subst x c t, ot_subst x c u)
  | Eq (t, u) -> Eq (ot_subst x c t, ot_subst x c u)
  | Ne (t, u) -> Ne (ot_subst x c t, ot_subst x c u)

(* [∃x ∈ ℕ. ⋀ atoms], test-point method; see the interface comment. *)
let exists_conj x lits =
  let atoms = List.map atom_of_literal lits in
  (* An equality pins x down: substitute, guarding nonnegativity. *)
  let rec find_eq seen = function
    | [] -> None
    | Eq (t, u) :: rest when mentions x t && not (mentions x u) ->
      Some ({ base = u.base; off = B.sub u.off t.off }, List.rev_append seen rest)
    | Eq (t, u) :: rest when mentions x u && not (mentions x t) ->
      Some ({ base = t.base; off = B.sub t.off u.off }, List.rev_append seen rest)
    | a :: rest -> find_eq (a :: seen) rest
  in
  let instantiate c rest =
    (* 0 ≤ c, i.e. -1 < c, plus the instantiated atoms *)
    let guard = Lt ({ base = None; off = B.minus_one }, c) in
    Formula.conj (List.map (fun a -> formula_of_atom (subst_atom x c a)) (guard :: rest))
  in
  match find_eq [] atoms with
  | Some (c, rest) -> instantiate c rest
  | None ->
    (* Lower bounds t < x + k give candidates (t - k) + 1 + s; 0 + s is
       always a candidate; s ranges over 0..K where K counts the
       disequalities on x. Atoms with x on both sides were resolved by
       [formula_of_atom]'s same-base cases only at output time, so handle
       them here: Lt/Eq/Ne with both sides mentioning x are ground in the
       difference of offsets. *)
    let resolved_both, atoms =
      List.partition
        (fun a ->
          match a with
          | Lt (t, u) | Eq (t, u) | Ne (t, u) -> mentions x t && mentions x u)
        atoms
    in
    let both_ok =
      List.for_all
        (fun a ->
          match a with
          | Lt (t, u) -> B.compare t.off u.off < 0
          | Eq (t, u) -> B.equal t.off u.off
          | Ne (t, u) -> not (B.equal t.off u.off))
        resolved_both
    in
    if not both_ok then Formula.False
    else begin
      let lowers =
        List.filter_map
          (function
            | Lt (t, u) when mentions x u && not (mentions x t) ->
              (* t < x + k ⟺ x > t - k: candidate base point (t - k) + 1 *)
              Some { base = t.base; off = B.succ (B.sub t.off u.off) }
            | _ -> None)
          atoms
      in
      let k_count =
        List.length
          (List.filter (function Ne (t, u) -> mentions x t || mentions x u | _ -> false) atoms)
      in
      let zero_cand = { base = None; off = B.zero } in
      let candidates =
        List.concat_map
          (fun cand -> List.init (k_count + 1) (fun s -> ot_plus cand (B.of_int s)))
          (zero_cand :: lowers)
      in
      let x_atoms, rest_atoms =
        List.partition
          (fun a ->
            match a with Lt (t, u) | Eq (t, u) | Ne (t, u) -> mentions x t || mentions x u)
          atoms
      in
      let rest = Formula.conj (List.map formula_of_atom rest_atoms) in
      (* The (K+1)·(1+|lowers|) test points are where nested eliminations
         blow up; checkpoint each instantiation against the ambient
         governor. *)
      let cases =
        List.map
          (fun c ->
            Budget.tick_ambient ();
            Fault.hit "qe.nat_order";
            Telemetry.count "qe.nat_order.steps";
            instantiate c x_atoms)
          candidates
      in
      Transform.simplify (Formula.And (rest, Formula.disj cases))
    end

let qe ?budget f =
  Budget.protect ?budget (fun () ->
      Telemetry.with_span "qe.nat_order" @@ fun () ->
      if not (Signature.is_pure signature f) then Error "not a pure N_< formula"
      else
        match Transform.eliminate_quantifiers ~exists_conj f with
        | qf -> Ok qf
        | exception Unsupported msg -> Error ("unsupported construct: " ^ msg))

let decide f =
  Budget.protect (fun () ->
  if not (Formula.is_sentence f) then
    Error
      (Printf.sprintf "formula has free variables: %s"
         (String.concat ", " (Formula.free_vars f)))
  else
    Result.bind (qe f) (fun qf ->
        let rec eval = function
          | Formula.True -> Ok true
          | Formula.False -> Ok false
          | Formula.Not g -> Result.map not (eval g)
          | Formula.And (g, h) ->
            Result.bind (eval g) (fun a -> if a then eval h else Ok false)
          | Formula.Or (g, h) ->
            Result.bind (eval g) (fun a -> if a then Ok true else eval h)
          | (Formula.Atom _ | Formula.Eq _) as a -> (
            (* ground atoms over numerals *)
            match formula_of_atom (atom_of_literal a) with
            | Formula.True -> Ok true
            | Formula.False -> Ok false
            | f -> Error (Printf.sprintf "non-ground residue: %s" (Formula.to_string f)))
          | f -> Error (Printf.sprintf "unexpected residue: %s" (Formula.to_string f))
        in
        eval qf))

let seeds _ = Seq.empty
