(** The paper's Section 2.2 domain [N']: {e unordered} natural numbers with
    only the successor function [x' = x + 1] and equality. The order [<] is
    famously not definable here, yet Theorems 2.6 and 2.7 show relative
    safety is decidable and finite queries have a recursive syntax — the
    point being that "the phenomenon of syntax does not completely rely on
    discrete ordering".

    The decision procedure is the paper's own quantifier elimination: every
    formula is a boolean combination of atoms [s^a(x) = s^b(y)]; in
    [∃x (⋀ literals)], an equality [x = y^{(n)}] substitutes directly
    (adding the guards [y ≠ 0 ∧ … ∧ y ≠ n−1] when [n] is negative), and a
    conjunction of disequalities alone is always satisfiable in the
    infinite domain. The output stays in the domain's own language. *)

include Domain.S

val qe : ?budget:Fq_core.Budget.t -> Fq_logic.Formula.t -> (Fq_logic.Formula.t, string) result
(** Quantifier-free equivalent over [N'] (free variables allowed). Each
    eliminated quantifier is checkpointed against [budget] (or the ambient
    {!Fq_core.Budget}); governor trips come back as structured [Error]
    strings, never exceptions. *)

val qe_offset_bound : Fq_logic.Formula.t -> int
(** An upper bound on the successor-offsets appearing in the quantifier-free
    equivalent of the formula, as a function of its quantifier depth [q] and
    the offsets already present — the paper's observation that "the new
    constants introduced under the quantifier-elimination procedure are
    within the distance 2^q from the constants in the original formula",
    which drives the extended-active-domain syntax of Theorem 2.7. *)
