(** The paper's central positive-case domain [N_<]: natural numbers with
    linear order (Section 2.1). Fact 2.1, Theorem 2.2 (finitization) and
    Theorem 2.5 (relative safety) are all about this domain and its
    extensions.

    The decision procedure is a dedicated {e test-point} quantifier
    elimination, independent of {!Cooper} (the test suite checks the two
    agree): in [∃x (⋀ tᵢ < x ∧ ⋀ x < uⱼ ∧ ⋀ x ≠ dₖ ∧ rest)], if a solution
    exists then one exists among the [K+1] smallest points at or above some
    lower bound, where [K] counts the disequalities — so [x] can be
    replaced by the finitely many candidate terms [0+s] and [tᵢ+1+s],
    [s ≤ K], each guarded by [0 ≤ candidate].

    Eliminating quantifiers introduces terms [v + k]; the domain's
    signature therefore includes [+] (with a numeral argument) and the
    successor [s] as syntactic sugar — the paper's results are stated for
    arbitrary {e extensions} of [N_<], so this costs no generality. *)

include Domain.S

val qe : ?budget:Fq_core.Budget.t -> Fq_logic.Formula.t -> (Fq_logic.Formula.t, string) result
(** Quantifier-free equivalent over [N_<] (free variables allowed, ranging
    over ℕ). Each test-point instantiation is checkpointed against
    [budget] (or the ambient {!Fq_core.Budget}); governor trips come back
    as structured [Error] strings, never exceptions. *)
