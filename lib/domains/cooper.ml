module B = Fq_numeric.Bigint
module Budget = Fq_core.Budget
module Fault = Fq_core.Fault
module Telemetry = Fq_core.Telemetry
module L = Linear_term
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Transform = Fq_logic.Transform

type atom =
  | Lt of L.t
  | Dvd of B.t * L.t
  | Ndvd of B.t * L.t

type qf =
  | T
  | F
  | A of atom
  | Conj of qf * qf
  | Disj of qf * qf

(* ---------------------- smart constructors ------------------------- *)

(* Ground atoms evaluate at construction time, keeping intermediate
   formulas small: Cooper's expansion is a large disjunction of
   substitution instances, most of which are ground in the inner loops. *)
let atom a =
  match a with
  | Lt t when L.is_const t -> if B.sign (L.const_part t) > 0 then T else F
  | Dvd (d, t) when L.is_const t -> if B.divisible ~by:d (L.const_part t) then T else F
  | Ndvd (d, t) when L.is_const t -> if B.divisible ~by:d (L.const_part t) then F else T
  | a -> A a

let conj a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, x | x, T -> x
  | a, b -> Conj (a, b)

let disj a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, x | x, F -> x
  | a, b -> Disj (a, b)

let rec qf_not = function
  | T -> F
  | F -> T
  | A (Lt t) -> atom (Lt (L.sub (L.of_int 1) t))
  | A (Dvd (d, t)) -> atom (Ndvd (d, t))
  | A (Ndvd (d, t)) -> atom (Dvd (d, t))
  | Conj (a, b) -> disj (qf_not a) (qf_not b)
  | Disj (a, b) -> conj (qf_not a) (qf_not b)

(* --------------------- conversion from formulas -------------------- *)

let ( let* ) = Result.bind

let lt a b = atom (Lt (L.sub b a))
let le a b = atom (Lt (L.succ (L.sub b a)))
let eq a b = conj (le a b) (le b a)

let dvd_atom k t =
  let* k = L.of_term k in
  let* t = L.of_term t in
  if not (L.is_const k) then Error "divisibility with a non-constant divisor"
  else
    let d = L.const_part k in
    if B.is_zero d then Ok (eq t L.zero) else Ok (atom (Dvd (B.abs d, t)))

let of_atom_formula f =
  match f with
  | Formula.Eq (a, b) ->
    let* a = L.of_term a in
    let* b = L.of_term b in
    Ok (eq a b)
  | Formula.Atom ("<", [ a; b ]) ->
    let* a = L.of_term a in
    let* b = L.of_term b in
    Ok (lt a b)
  | Formula.Atom ("<=", [ a; b ]) ->
    let* a = L.of_term a in
    let* b = L.of_term b in
    Ok (le a b)
  | Formula.Atom (">", [ a; b ]) ->
    let* a = L.of_term a in
    let* b = L.of_term b in
    Ok (lt b a)
  | Formula.Atom (">=", [ a; b ]) ->
    let* a = L.of_term a in
    let* b = L.of_term b in
    Ok (le b a)
  | Formula.Atom ("dvd", [ k; t ]) -> dvd_atom k t
  | Formula.Atom (p, args) ->
    Error (Printf.sprintf "non-Presburger predicate %s/%d" p (List.length args))
  | _ -> Error "expected an atom"

let of_formula f =
  let rec go f =
    match f with
    | Formula.True -> Ok T
    | Formula.False -> Ok F
    | Formula.Not g ->
      let* g = go g in
      Ok (qf_not g)
    | Formula.And (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (conj g h)
    | Formula.Or (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (disj g h)
    | Formula.Imp (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (disj (qf_not g) h)
    | Formula.Iff (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (disj (conj g h) (conj (qf_not g) (qf_not h)))
    | Formula.Exists _ | Formula.Forall _ -> Error "of_formula: quantifier"
    | Formula.Atom _ | Formula.Eq _ -> of_atom_formula f
  in
  go f

let to_formula qf =
  let atom_to_formula = function
    | Lt t -> Formula.Atom ("<", [ Term.Const "0"; L.to_term t ])
    | Dvd (d, t) -> Formula.Atom ("dvd", [ Term.Const (B.to_string d); L.to_term t ])
    | Ndvd (d, t) ->
      Formula.Not (Formula.Atom ("dvd", [ Term.Const (B.to_string d); L.to_term t ]))
  in
  let rec go = function
    | T -> Formula.True
    | F -> Formula.False
    | A a -> atom_to_formula a
    | Conj (a, b) -> Formula.And (go a, go b)
    | Disj (a, b) -> Formula.Or (go a, go b)
  in
  go qf

(* --------------------------- elimination --------------------------- *)

let rec map_atoms fn = function
  | T -> T
  | F -> F
  | A a -> fn a
  | Conj (a, b) -> conj (map_atoms fn a) (map_atoms fn b)
  | Disj (a, b) -> disj (map_atoms fn a) (map_atoms fn b)

let rec fold_atoms fn acc = function
  | T | F -> acc
  | A a -> fn acc a
  | Conj (a, b) | Disj (a, b) -> fold_atoms fn (fold_atoms fn acc a) b

let term_of_atom = function Lt t -> t | Dvd (_, t) -> t | Ndvd (_, t) -> t

let subst_x x u = map_atoms (fun a ->
    match a with
    | Lt t -> atom (Lt (L.subst x u t))
    | Dvd (d, t) -> atom (Dvd (d, L.subst x u t))
    | Ndvd (d, t) -> atom (Ndvd (d, L.subst x u t)))

let eliminate x phi =
  let coeffs =
    fold_atoms
      (fun acc a ->
        let c = L.coeff x (term_of_atom a) in
        if B.is_zero c then acc else B.abs c :: acc)
      [] phi
  in
  match coeffs with
  | [] -> phi (* x does not occur *)
  | _ ->
    let l = B.lcm_list coeffs in
    (* Normalize x's coefficient to ±1, reading x as "l·x": multiply each
       atom through by l/|c| and add the divisibility constraint l | x. *)
    let unify a =
      let t = term_of_atom a in
      let c = L.coeff x t in
      if B.is_zero c then atom a
      else
        let m = B.div l (B.abs c) in
        let scaled = L.add (L.scale m (L.remove x t)) (L.scale (B.div (B.mul m c) l) (L.var x)) in
        match a with
        | Lt _ -> atom (Lt scaled)
        | Dvd (d, _) -> atom (Dvd (B.mul m d, scaled))
        | Ndvd (d, _) -> atom (Ndvd (B.mul m d, scaled))
    in
    let phi1 = conj (map_atoms unify phi) (atom (Dvd (l, L.var x))) in
    (* δ: lcm of all divisors; B: lower-bound terms b with "b < x" atoms. *)
    let delta =
      fold_atoms
        (fun acc a -> match a with Dvd (d, _) | Ndvd (d, _) -> B.lcm acc d | Lt _ -> acc)
        B.one phi1
    in
    let bset =
      fold_atoms
        (fun acc a ->
          match a with
          | Lt t when B.equal (L.coeff x t) B.one ->
            let b = L.neg (L.remove x t) in
            if List.exists (L.equal b) acc then acc else b :: acc
          | Lt _ | Dvd _ | Ndvd _ -> acc)
        [] phi1
    in
    let minus_inf =
      map_atoms
        (fun a ->
          match a with
          | Lt t ->
            let c = L.coeff x t in
            if B.is_zero c then atom a else if B.sign c > 0 then F else T
          | Dvd _ | Ndvd _ -> atom a)
        phi1
    in
    let delta_int =
      match B.to_int_opt delta with
      | Some d -> d
      | None ->
        (* The expansion below enumerates δ residues; a δ beyond the native
           range cannot be materialized, so this input is outside the
           procedure's fragment — a structured refusal, not a crash. *)
        Budget.unsupported
          (Printf.sprintf "Cooper: divisor lcm %s exceeds the native expansion range"
             (B.to_string delta))
    in
    (* The δ·(1+|B|) substitution instances are Cooper's exponential seat —
       checkpoint each one so a governed caller can cut the expansion
       short. *)
    let rec expand j acc =
      if j > delta_int then acc
      else begin
        Budget.tick_ambient ();
        Fault.hit "qe.cooper";
        Telemetry.count "qe.cooper.steps";
        let jt = L.of_int j in
        let from_minus_inf = subst_x x jt minus_inf in
        let from_bounds =
          List.fold_left
            (fun acc b ->
              Budget.tick_ambient ();
              Fault.hit "qe.cooper";
              Telemetry.count "qe.cooper.steps";
              disj acc (subst_x x (L.add b jt) phi1))
            F bset
        in
        expand (j + 1) (disj acc (disj from_minus_inf from_bounds))
      end
    in
    expand 1 F

(* ----------------------------- driver ------------------------------ *)

let qe_exn f =
  let rec go f =
    match f with
    | Formula.True -> Ok T
    | Formula.False -> Ok F
    | Formula.Atom _ | Formula.Eq _ -> of_atom_formula f
    | Formula.Not g ->
      let* g = go g in
      Ok (qf_not g)
    | Formula.And (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (conj g h)
    | Formula.Or (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (disj g h)
    | Formula.Imp (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (disj (qf_not g) h)
    | Formula.Iff (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (disj (conj g h) (conj (qf_not g) (qf_not h)))
    | Formula.Exists (x, g) ->
      let* g = go g in
      Ok (eliminate x g)
    | Formula.Forall (x, g) ->
      let* g = go g in
      Ok (qf_not (eliminate x (qf_not g)))
  in
  go f

let qe ?budget f =
  Budget.protect ?budget (fun () -> Telemetry.with_span "qe.cooper" (fun () -> qe_exn f))

let eval_qf ~env qf =
  let eval_atom = function
    | Lt t -> Result.map (fun v -> B.sign v > 0) (L.eval ~env t)
    | Dvd (d, t) -> Result.map (B.divisible ~by:d) (L.eval ~env t)
    | Ndvd (d, t) -> Result.map (fun v -> not (B.divisible ~by:d v)) (L.eval ~env t)
  in
  let rec go = function
    | T -> Ok true
    | F -> Ok false
    | A a -> eval_atom a
    | Conj (a, b) -> Result.bind (go a) (fun x -> if x then go b else Ok false)
    | Disj (a, b) -> Result.bind (go a) (fun x -> if x then Ok true else go b)
  in
  go qf

let decide ?budget f =
  Budget.protect ?budget (fun () ->
      Telemetry.with_span "qe.cooper" @@ fun () ->
      if not (Formula.is_sentence f) then
        Error
          (Printf.sprintf "formula has free variables: %s"
             (String.concat ", " (Formula.free_vars f)))
      else
        let* qf = qe_exn f in
        eval_qf ~env:[] qf)

let rec atom_count = function
  | T | F -> 0
  | A _ -> 1
  | Conj (a, b) | Disj (a, b) -> atom_count a + atom_count b
