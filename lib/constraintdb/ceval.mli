(** First-order query evaluation over constraint databases — the actual
    query language of [KKR90] that Section 1.2 refers to: relational
    calculus with order atoms, where database relations are finitely
    representable ({!Crel}) rather than finite, and the {e answer} is again
    finitely representable.

    The closure property is the point: every first-order query over
    constraint relations evaluates, by structural recursion, to a
    constraint relation — disjunction is union, conjunction is join,
    negation is complement (relative to the free columns), and the
    quantifiers are projections backed by the dense-order quantifier
    elimination of {!Crel.project}. Finiteness of the result — the
    relative safety question — is then decidable by {!Crel.is_finite},
    in contrast to the trace domain (Theorem 3.3). *)

type db = (string * Crel.t) list
(** Named constraint relations; each fixes the arity via its columns
    (column names are positional placeholders, renamed on use). *)

val query :
  ?budget:Fq_core.Budget.t -> db:db -> Fq_logic.Formula.t -> (Crel.t, string) result
(** Evaluates a formula over the signature [{<, <=, =}] plus the database
    relations. The result's columns are the formula's free variables in
    first-occurrence order. Constants are decimal rationals ([Term.Const
    "3"], ["1/2"], ["-7/3"]); function symbols are rejected.

    Negation complements relative to the free variables of the negated
    subformula; universal quantification is [¬∃¬]. The semantics is the
    natural one over all of ℚ (constraint relations are not restricted to
    an active domain). *)

val holds :
  ?budget:Fq_core.Budget.t ->
  db:db ->
  Fq_logic.Formula.t ->
  env:(string * Rat.t) list ->
  (bool, string) result
(** Truth of a formula under an assignment of rationals to its free
    variables. *)

val decide :
  ?budget:Fq_core.Budget.t -> db:db -> Fq_logic.Formula.t -> (bool, string) result
(** Truth of a sentence: evaluate and test nonemptiness.

    All three entry points charge one work unit per connective of the
    compilation recursion to [budget] (or the ambient {!Fq_core.Budget});
    governor trips come back as the structured [Error] strings of
    {!Fq_core.Budget.error_string}. *)
