module Formula = Fq_logic.Formula
module Term = Fq_logic.Term

type db = (string * Crel.t) list

exception Unsupported of string

let ( let* ) = Result.bind

let rat_of_const c =
  match Rat.of_string c with
  | r -> r
  | exception _ -> raise (Unsupported (Printf.sprintf "constant %S is not a rational" c))

let term_of = function
  | Term.Var x -> Crel.V x
  | Term.Const c -> Crel.C (rat_of_const c)
  | Term.App (f, args) ->
    raise (Unsupported (Printf.sprintf "function %s/%d over (Q,<)" f (List.length args)))

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs |> List.rev

(* extend a relation to a superset of columns (new ones unconstrained) *)
let extend target r =
  let missing = List.filter (fun c -> not (List.mem c (Crel.columns r))) target in
  let widened = if missing = [] then r else Crel.join r (Crel.full ~columns:missing) in
  Crel.reorder ~columns:target widened

let atom_rel op t u =
  let vars = dedup (List.filter_map (function Crel.V x -> Some x | Crel.C _ -> None) [ t; u ]) in
  Crel.select { Crel.lhs = t; op; rhs = u } (Crel.full ~columns:vars)

let compile ~db f =
  let rec go f =
    (* one work unit per connective: the complement/join recursion can blow
       up doubly exponentially in the quantifier alternation depth *)
    Fq_core.Budget.tick_ambient ();
    match f with
    | Formula.True -> Crel.full ~columns:[]
    | Formula.False -> Crel.empty ~columns:[]
    | Formula.Eq (t, u) -> atom_rel Crel.Eq (term_of t) (term_of u)
    | Formula.Atom ("<", [ t; u ]) -> atom_rel Crel.Lt (term_of t) (term_of u)
    | Formula.Atom ("<=", [ t; u ]) -> atom_rel Crel.Le (term_of t) (term_of u)
    | Formula.Atom (">", [ t; u ]) -> atom_rel Crel.Lt (term_of u) (term_of t)
    | Formula.Atom (">=", [ t; u ]) -> atom_rel Crel.Le (term_of u) (term_of t)
    | Formula.Atom (r, args) -> db_atom r args
    | Formula.Not g ->
      (* complement relative to the subformula's own free columns *)
      Crel.complement (go g)
    | Formula.And (g, h) -> Crel.join (go g) (go h)
    | Formula.Or (g, h) ->
      let cg = go g and ch = go h in
      let target = dedup (Crel.columns cg @ Crel.columns ch) in
      Crel.union (extend target cg) (extend target ch)
    | Formula.Imp (g, h) -> go (Formula.Or (Formula.Not g, h))
    | Formula.Iff (g, h) ->
      go (Formula.Or (Formula.And (g, h), Formula.And (Formula.Not g, Formula.Not h)))
    | Formula.Exists (x, g) ->
      let cg = go g in
      let keep = List.filter (fun c -> c <> x) (Crel.columns cg) in
      Crel.project ~keep cg
    | Formula.Forall (x, g) -> go (Formula.Not (Formula.Exists (x, Formula.Not g)))
  and db_atom r args =
    match List.assoc_opt r db with
    | None -> raise (Unsupported (Printf.sprintf "unknown constraint relation %s" r))
    | Some rel ->
      let cols = Crel.columns rel in
      if List.length cols <> List.length args then
        raise
          (Unsupported
             (Printf.sprintf "relation %s has arity %d, used with %d arguments" r
                (List.length cols) (List.length args)));
      (* rename stored columns apart, equate with the argument terms, then
         project onto the argument variables *)
      let fresh = List.mapi (fun i c -> (c, Printf.sprintf "%s__arg%d" r i)) cols in
      let renamed = Crel.rename fresh rel in
      let arg_terms = List.map term_of args in
      let with_args =
        List.fold_left2
          (fun acc (_, f) t -> Crel.select { Crel.lhs = Crel.V f; op = Crel.Eq; rhs = t } acc)
          (Crel.join renamed
             (Crel.full
                ~columns:
                  (dedup
                     (List.filter_map (function Crel.V x -> Some x | Crel.C _ -> None) arg_terms))))
          fresh arg_terms
      in
      let keep =
        dedup (List.filter_map (function Crel.V x -> Some x | Crel.C _ -> None) arg_terms)
      in
      Crel.project ~keep with_args
  in
  match go f with
  | rel ->
    (* order the columns by first occurrence of the free variables *)
    let free = Formula.free_vars f in
    let cols = Crel.columns rel in
    let target = List.filter (fun v -> List.mem v cols) free in
    if List.sort compare target = List.sort compare cols then
      Ok (Crel.reorder ~columns:target rel)
    else Ok rel
  | exception Unsupported msg -> Error msg

let query ?budget ~db f = Fq_core.Budget.protect ?budget (fun () -> compile ~db f)

let holds ?budget ~db f ~env =
  Fq_core.Budget.protect ?budget (fun () ->
      let* rel = compile ~db f in
      let cols = Crel.columns rel in
      let* tuple =
        List.fold_right
          (fun c acc ->
            let* acc = acc in
            match List.assoc_opt c env with
            | Some r -> Ok (r :: acc)
            | None -> Error (Printf.sprintf "no value for free variable %s" c))
          cols (Ok [])
      in
      Ok (Crel.mem rel tuple))

let decide ?budget ~db f =
  Fq_core.Budget.protect ?budget (fun () ->
      let* rel = compile ~db f in
      if Crel.columns rel <> [] then Error "not a sentence"
      else Ok (not (Crel.is_empty rel)))
