(** Facade for the Finite Queries library — a reproduction of
    Stolboushkin & Taitslin, {e "Finite Queries Do Not Have Effective
    Syntax"} (PODS'95 / Information and Computation 153, 1999).

    One module per concept, re-exported from the internal libraries:

    {2 Logic}
    - {!Term}, {!Formula}, {!Parser}, {!Transform}, {!Signature} — the
      relational calculus (first-order logic over a domain signature plus
      a database scheme).

    {2 Databases}
    - {!Value}, {!Schema}, {!Tuple-less Relation}, {!State}, {!Relalg} —
      finite relations, database states, and the positional relational
      algebra.

    {2 Domains} (Section 1.1's recursive domains with decidable theories)
    - {!Domain} — the abstraction; {!Eq_domain}, {!Nat_order} ([N_<]),
      {!Nat_succ} ([N']), {!Presburger}, {!Arithmetic}, {!Extension}, and
      the paper's trace domain {!Traces} with its {!Reach} theory and the
      {!Reach_qe} quantifier elimination (Theorem A.3).

    {2 Turing machines} (the substrate of Section 3)
    - {!Machine}, {!Tape}, {!Run}, {!Encode}, {!Trace}, {!Builder}
      (Lemma A.2), {!Classify}, {!Zoo}.

    {2 Evaluation}
    - {!Translate}, {!Enumerate} — the Section 1.1 enumerate-and-decide
      algorithm; {!Algebra_translate} — compilation to algebra for the
      safe-range fragment; {!Query} — the resilient front-end with the
      RANF → active-domain → budgeted-enumeration degradation chain.

    {2 Resource governor and supervision}
    - {!Budget} — step fuel, wall-clock deadline, cardinality cap, and
      cooperative cancellation unified behind one structured failure type;
      threaded through every long-running engine.
    - {!Fault} — deterministic chaos harness: named injection sites in the
      engine hot paths fire on a pure [(seed, site, hit)] schedule.
    - {!Supervisor} — crash isolation, retry with exponential backoff,
      circuit breaking, and the OCaml 5 domain pool behind [fq batch].

    {2 Query service}
    - {!Json} — a small JSON tree with a parser and printer;
    - {!Outcome} — the Complete/Partial/Unsupported query-outcome
      taxonomy with its stable JSON codec and exit-code mapping, shared
      by [fq eval], [fq batch] and [fq serve];
    - {!Protocol}, {!Server}, {!Client}, {!Journal}, {!Fleet} — the
      [fq serve] NDJSON wire protocol, the persistent daemon, a
      blocking client with fleet failover, the crash-safe decide-cache
      journal, and the [fq fleet] multi-process supervisor.

    {2 Safety}
    - {!Safe_range}, {!Finitization} (Theorem 2.2), {!Ext_active}
      (Theorems 2.6/2.7), {!Relative_safety} (Theorem 2.5 / 3.3),
      {!Syntax_class}, {!Formula_enum}, {!Diagonal} (Theorem 3.1),
      {!Halting_reduction} (Theorem 3.3).

    {2 Constraint databases} (Section 1.2)
    - {!Rat}, {!Crel}. *)

(* resource governor, telemetry, chaos harness, supervision *)
module Budget = Fq_core.Budget
module Json = Fq_core.Json
module Telemetry = Fq_core.Telemetry
module Aggregate = Fq_core.Aggregate
module Fault = Fq_core.Fault
module Supervisor = Fq_core.Supervisor

(* numerics *)
module Bigint = Fq_numeric.Bigint

(* logic *)
module Term = Fq_logic.Term
module Formula = Fq_logic.Formula
module Parser = Fq_logic.Parser
module Lexer = Fq_logic.Lexer
module Transform = Fq_logic.Transform
module Signature = Fq_logic.Signature

(* words and Turing machines *)
module Word = Fq_words.Word
module Machine = Fq_tm.Machine
module Tape = Fq_tm.Tape
module Run = Fq_tm.Run
module Encode = Fq_tm.Encode
module Trace = Fq_tm.Trace
module Builder = Fq_tm.Builder
module Classify = Fq_tm.Classify
module Combine = Fq_tm.Combine
module Explain = Fq_tm.Explain
module Zoo = Fq_tm.Zoo

(* databases *)
module Value = Fq_db.Value
module Schema = Fq_db.Schema
module Relation = Fq_db.Relation
module State = Fq_db.State
module Relalg = Fq_db.Relalg
module Row = Fq_db.Row
module Optimizer = Fq_db.Optimizer
module Codec = Fq_db.Codec

(* domains *)
module Domain = Fq_domain.Domain
module Decide_cache = Fq_domain.Decide_cache
module Eq_domain = Fq_domain.Eq_domain
module Nat_order = Fq_domain.Nat_order
module Nat_succ = Fq_domain.Nat_succ
module Presburger = Fq_domain.Presburger
module Arithmetic = Fq_domain.Arithmetic
module Cooper = Fq_domain.Cooper
module Linear_term = Fq_domain.Linear_term
module Extension = Fq_domain.Extension
module Traces = Fq_domain.Traces
module Reach = Fq_domain.Reach
module Reach_qe = Fq_domain.Reach_qe

(* evaluation *)
module Translate = Fq_eval.Translate
module Enumerate = Fq_eval.Enumerate
module Safe_range = Fq_eval.Safe_range
module Algebra_translate = Fq_eval.Algebra_translate
module Ranf = Fq_eval.Ranf
module Outcome = Fq_eval.Outcome
module Query = Fq_eval.Query

(* the fq serve daemon and its wire protocol *)
module Protocol = Fq_server.Protocol
module Server = Fq_server.Server
module Client = Fq_server.Client
module Journal = Fq_server.Journal
module Fleet = Fq_server.Fleet

(* safety *)
module Finitization = Fq_safety.Finitization
module Ext_active = Fq_safety.Ext_active
module Relative_safety = Fq_safety.Relative_safety
module Formula_enum = Fq_safety.Formula_enum
module Syntax_class = Fq_safety.Syntax_class
module Diagonal = Fq_safety.Diagonal
module Halting_reduction = Fq_safety.Halting_reduction
module Report = Fq_safety.Report

(* constraint databases *)
module Rat = Fq_constraintdb.Rat
module Crel = Fq_constraintdb.Crel
module Ceval = Fq_constraintdb.Ceval
