type value = Int of int | Float of float | Bool of bool | Str of string

type span = {
  name : string;
  attrs : (string * value) list;
  start_ms : float;
  dur_ms : float;
  self_ms : float;
  ticks : int;
  self_ticks : int;
  children : span list;
}

type histogram = { count : int; sum : float; min : float; max : float }

type report = {
  roots : span list;
  counters : (string * int) list;
  histograms : (string * histogram) list;
  dropped_spans : int;
  evicted_histograms : int;
  trace_id : string option;
}

(* An open span under construction.  [f_t0] is absolute wall-clock ms;
   children accumulate reversed. *)
type frame = {
  f_name : string;
  mutable f_attrs : (string * value) list; (* reversed *)
  f_t0 : float;
  f_ticks0 : int;
  mutable f_kids : span list; (* reversed *)
  mutable f_kid_ticks : int;
  mutable f_kid_ms : float;
}

(* Histogram cells double as nodes of an intrusive doubly-linked recency
   list (head = most recently observed), the same shape as the
   decide-cache LRU: an adversarial query stream minting fresh
   per-fingerprint names ([relalg.node_card.<fp>]) can no longer grow the
   key space without bound — past [max_histos] the coldest cell is
   evicted and tallied.  A collector is domain-local single-threaded
   state, so unlike the decide cache no lock is needed. *)
type hcell = {
  h_key : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_prev : hcell option;
  mutable h_next : hcell option;
}

(* The no-op sink keeps [enabled] true while skipping all bookkeeping: the
   cost of observation itself (the branches in the engines' inner loops)
   can be measured against the fully-disabled build. *)
type mode = Noop | Record

type collector = {
  mode : mode;
  max_spans : int;
  max_histos : int;
  t_start : float;
  mutable stack : frame list;
  mutable roots : span list; (* reversed *)
  mutable nspans : int;
  mutable dropped : int;
  mutable trace : string option;
  counters : (string, int ref) Hashtbl.t;
  histos : (string, hcell) Hashtbl.t;
  mutable h_head : hcell option; (* most recently observed *)
  mutable h_tail : hcell option; (* eviction candidate *)
  mutable h_evicted : int;
}

(* Exactly one collector is ambient at a time per domain; [record] and
   [with_noop] nest by save/restore, like the ambient budget.  The slot is
   domain-local ([Domain.DLS]): a collector is single-threaded mutable
   state, so each worker of a parallel batch records (or stays silent)
   independently instead of racing on one frame stack. *)
let active_key : collector option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get active_key

let enabled () = Option.is_some (active ())

let now_ms () = Unix.gettimeofday () *. 1000.

let close c fr =
  (match c.stack with
  | top :: rest when top == fr -> c.stack <- rest
  | _ -> () (* unbalanced close (collector swapped mid-span); drop silently *));
  let t1 = now_ms () in
  let ticks = Budget.global_ticks () - fr.f_ticks0 in
  let dur = t1 -. fr.f_t0 in
  let sp =
    { name = fr.f_name;
      attrs = List.rev fr.f_attrs;
      start_ms = fr.f_t0 -. c.t_start;
      dur_ms = dur;
      self_ms = Float.max 0. (dur -. fr.f_kid_ms);
      ticks;
      self_ticks = max 0 (ticks - fr.f_kid_ticks);
      children = List.rev fr.f_kids }
  in
  match c.stack with
  | parent :: _ ->
    parent.f_kids <- sp :: parent.f_kids;
    parent.f_kid_ticks <- parent.f_kid_ticks + ticks;
    parent.f_kid_ms <- parent.f_kid_ms +. dur
  | [] -> c.roots <- sp :: c.roots

let with_span ?(attrs = []) name f =
  match active () with
  | None -> f ()
  | Some c -> (
    match c.mode with
    | Noop -> f ()
    | Record ->
      if c.nspans >= c.max_spans then begin
        c.dropped <- c.dropped + 1;
        f ()
      end
      else begin
        c.nspans <- c.nspans + 1;
        let fr =
          { f_name = name;
            f_attrs = List.rev attrs;
            f_t0 = now_ms ();
            f_ticks0 = Budget.global_ticks ();
            f_kids = [];
            f_kid_ticks = 0;
            f_kid_ms = 0. }
        in
        c.stack <- fr :: c.stack;
        Fun.protect ~finally:(fun () -> close c fr) f
      end)

let set_attr k v =
  match active () with
  | Some { mode = Record; stack = fr :: _; _ } -> fr.f_attrs <- (k, v) :: fr.f_attrs
  | _ -> ()

let count ?(n = 1) name =
  match active () with
  | Some ({ mode = Record; _ } as c) -> (
    match Hashtbl.find_opt c.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add c.counters name (ref n))
  | _ -> ()

(* recency-list plumbing, mirroring Decide_cache *)

let unlink c cell =
  (match cell.h_prev with
  | Some p -> p.h_next <- cell.h_next
  | None -> c.h_head <- cell.h_next);
  (match cell.h_next with
  | Some n -> n.h_prev <- cell.h_prev
  | None -> c.h_tail <- cell.h_prev);
  cell.h_prev <- None;
  cell.h_next <- None

let push_front c cell =
  cell.h_prev <- None;
  cell.h_next <- c.h_head;
  (match c.h_head with Some h -> h.h_prev <- Some cell | None -> c.h_tail <- Some cell);
  c.h_head <- Some cell

let touch c cell = if c.h_head != Some cell then (unlink c cell; push_front c cell)

let evict_excess c =
  while c.max_histos > 0 && Hashtbl.length c.histos > c.max_histos do
    match c.h_tail with
    | None -> Hashtbl.reset c.histos (* unreachable: list tracks the table *)
    | Some cold ->
      unlink c cold;
      Hashtbl.remove c.histos cold.h_key;
      c.h_evicted <- c.h_evicted + 1
  done

let observe name v =
  match active () with
  | Some ({ mode = Record; _ } as c) -> (
    match Hashtbl.find_opt c.histos name with
    | Some h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      touch c h
    | None ->
      let cell =
        { h_key = name; h_count = 1; h_sum = v; h_min = v; h_max = v;
          h_prev = None; h_next = None }
      in
      Hashtbl.add c.histos name cell;
      push_front c cell;
      evict_excess c)
  | _ -> ()

let set_trace_id id =
  match active () with
  | Some ({ mode = Record; _ } as c) -> c.trace <- Some id
  | _ -> ()

let trace_id () =
  match active () with Some c -> c.trace | None -> None

(* ---------------------------- recording ---------------------------- *)

let make_collector ?(max_histos = 1024) mode max_spans =
  { mode;
    max_spans;
    max_histos;
    t_start = now_ms ();
    stack = [];
    roots = [];
    nspans = 0;
    dropped = 0;
    trace = None;
    counters = Hashtbl.create 16;
    histos = Hashtbl.create 16;
    h_head = None;
    h_tail = None;
    h_evicted = 0 }

let run_with c f =
  let saved = active () in
  Domain.DLS.set active_key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set active_key saved) f

let snapshot c =
  let sorted_assoc fold project tbl =
    fold (fun k v acc -> (k, project v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { roots = List.rev c.roots;
    counters = sorted_assoc Hashtbl.fold (fun r -> !r) c.counters;
    histograms =
      sorted_assoc Hashtbl.fold
        (fun h -> { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max })
        c.histos;
    dropped_spans = c.dropped;
    evicted_histograms = c.h_evicted;
    trace_id = c.trace }

let record ?(max_spans = 20_000) ?max_histos f =
  let c = make_collector ?max_histos Record max_spans in
  let v = run_with c f in
  (v, snapshot c)

let with_noop f = run_with (make_collector Noop 0) f

(* ----------------------------- analysis ----------------------------- *)

let total_ticks (r : report) = List.fold_left (fun acc sp -> acc + sp.ticks) 0 r.roots

let attribution (r : report) =
  let tbl = Hashtbl.create 16 in
  let rec go sp =
    (match Hashtbl.find_opt tbl sp.name with
    | Some acc -> acc := !acc + sp.self_ticks
    | None -> Hashtbl.add tbl sp.name (ref sp.self_ticks));
    List.iter go sp.children
  in
  List.iter go r.roots;
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
  |> List.sort (fun (na, a) (nb, b) -> if a <> b then compare b a else compare na nb)

(* Sibling spans of the same name collapse into one line; pretty output of
   an enumeration that decided 500 candidates stays 500x shorter than the
   machine sinks. *)
type rollup = {
  r_name : string;
  r_count : int;
  r_ticks : int;
  r_self_ticks : int;
  r_dur_ms : float;
  r_attrs : (string * value) list;
  r_children : rollup list;
}

let rec rollup spans =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt tbl sp.name with
      | Some l -> l := sp :: !l
      | None ->
        Hashtbl.add tbl sp.name (ref [ sp ]);
        order := sp.name :: !order)
    spans;
  List.rev_map
    (fun name ->
      let group = List.rev !(Hashtbl.find tbl name) in
      { r_name = name;
        r_count = List.length group;
        r_ticks = List.fold_left (fun a sp -> a + sp.ticks) 0 group;
        r_self_ticks = List.fold_left (fun a sp -> a + sp.self_ticks) 0 group;
        r_dur_ms = List.fold_left (fun a sp -> a +. sp.dur_ms) 0. group;
        r_attrs = (match group with [ sp ] -> sp.attrs | _ -> []);
        r_children = rollup (List.concat_map (fun sp -> sp.children) group) })
    !order

(* ------------------------------ sinks ------------------------------- *)

let pp_value ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.pp_print_string ppf s

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Format.fprintf ppf " [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k pp_value v))
      attrs

let pp_pretty ppf (r : report) =
  Format.fprintf ppf "spans (ticks total/self):@\n";
  let rec go indent ru =
    Format.fprintf ppf "%s%s%s%a  ticks=%d/%d  %.1fms@\n" indent ru.r_name
      (if ru.r_count > 1 then Printf.sprintf " x%d" ru.r_count else "")
      pp_attrs ru.r_attrs ru.r_ticks ru.r_self_ticks ru.r_dur_ms;
    List.iter (go (indent ^ "  ")) ru.r_children
  in
  List.iter (go "  ") (rollup r.roots);
  if r.dropped_spans > 0 then
    Format.fprintf ppf "  (%d spans over the recording cap, not shown)@\n" r.dropped_spans

let pp_metrics ppf (r : report) =
  if r.counters <> [] then begin
    Format.fprintf ppf "counters:@\n";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-40s %d@\n" k v) r.counters
  end;
  if r.histograms <> [] then begin
    Format.fprintf ppf "histograms (count/sum/min/max):@\n";
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "  %-40s n=%d sum=%g min=%g max=%g@\n" k h.count h.sum h.min h.max)
      r.histograms
  end;
  if r.evicted_histograms > 0 then
    Format.fprintf ppf "  (%d cold histogram keys evicted over the cap)@\n" r.evicted_histograms

(* minimal JSON encoding; attribute strings are escaped by hand so the
   sinks stay dependency-free *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_value = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let json_attrs attrs =
  String.concat ", "
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (json_value v)) attrs)

let pp_jsonl ppf (r : report) =
  let rec span depth sp =
    Format.fprintf ppf
      "{\"type\": \"span\", \"name\": \"%s\", \"depth\": %d, \"start_ms\": %.3f, \"dur_ms\": \
       %.3f, \"self_ms\": %.3f, \"ticks\": %d, \"self_ticks\": %d, \"attrs\": {%s}}@\n"
      (json_escape sp.name) depth sp.start_ms sp.dur_ms sp.self_ms sp.ticks sp.self_ticks
      (json_attrs sp.attrs);
    List.iter (span (depth + 1)) sp.children
  in
  List.iter (span 0) r.roots;
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf "{\"type\": \"counter\", \"name\": \"%s\", \"value\": %d}@\n"
        (json_escape k) v)
    r.counters;
  List.iter
    (fun (k, h) ->
      Format.fprintf ppf
        "{\"type\": \"histogram\", \"name\": \"%s\", \"count\": %d, \"sum\": %g, \"min\": %g, \
         \"max\": %g}@\n"
        (json_escape k) h.count h.sum h.min h.max)
    r.histograms;
  if r.dropped_spans > 0 then
    Format.fprintf ppf "{\"type\": \"dropped_spans\", \"value\": %d}@\n" r.dropped_spans;
  if r.evicted_histograms > 0 then
    Format.fprintf ppf "{\"type\": \"evicted_histograms\", \"value\": %d}@\n" r.evicted_histograms

let pp_chrome ppf (r : report) =
  (* the Chrome trace_event "JSON Array Format": ts/dur in microseconds *)
  Format.fprintf ppf "[@\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Format.fprintf ppf ",@\n"
  in
  let rec span sp =
    sep ();
    let args =
      json_attrs ((("ticks", Int sp.ticks) :: ("self_ticks", Int sp.self_ticks) :: sp.attrs))
    in
    Format.fprintf ppf
      "{\"name\": \"%s\", \"cat\": \"fq\", \"ph\": \"X\", \"ts\": %.1f, \"dur\": %.1f, \
       \"pid\": 1, \"tid\": 1, \"args\": {%s}}"
      (json_escape sp.name) (sp.start_ms *. 1000.) (sp.dur_ms *. 1000.) args;
    List.iter span sp.children
  in
  List.iter span r.roots;
  if r.counters <> [] then begin
    sep ();
    Format.fprintf ppf
      "{\"name\": \"metrics\", \"cat\": \"fq\", \"ph\": \"i\", \"ts\": 0, \"pid\": 1, \"tid\": \
       1, \"s\": \"g\", \"args\": {%s}}"
      (json_attrs (List.map (fun (k, v) -> (k, Int v)) r.counters))
  end;
  Format.fprintf ppf "@\n]@\n"
