(** Minimal JSON — the wire substrate of the {!Fq_eval.Outcome} schema
    and the [fq serve] newline-delimited protocol.

    The tree is deliberately small: no streaming, no floats-vs-decimals
    cleverness beyond what the library itself needs.  Numbers wider than
    the native word round-trip through {!Intlit} (the decimal literal is
    kept verbatim), so [Bigint]-valued database tuples survive
    serialization exactly.

    The printer emits one line (no newlines, minimal spaces) — a printed
    value is a valid NDJSON record as-is.  The parser accepts standard
    JSON (insignificant whitespace, escapes, nested structures) and
    rejects trailing garbage, so a protocol peer cannot smuggle a second
    message inside one line. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Intlit of string  (** integer literal wider than the native word *)
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering with full string escaping. *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Parse exactly one JSON value (surrounding whitespace allowed);
    [Error] carries a position-annotated message. *)

(** {1 Accessors} — total, [option]-valued, for protocol decoding. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or a missing key. *)

val to_int_opt : t -> int option
(** [Int] directly; [Intlit]/[Float] when exactly representable. *)

val to_float_opt : t -> float option

val to_str_opt : t -> string option

val to_bool_opt : t -> bool option

val to_list_opt : t -> t list option
