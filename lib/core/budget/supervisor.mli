(** Supervised execution: crash isolation, retry with exponential
    backoff, circuit breaking, and a bounded-concurrency worker pool.

    {!Budget} bounds how long an evaluation may run; this module bounds
    what an evaluation may {e do to its caller}.  A supervised thunk can
    raise anything — an injected chaos fault ({!Fault.Injected}), an
    escaped governor trip ([Budget.Exhausted]), or a genuine bug — and
    the supervisor converts the escape into data ({!crash}), retries the
    transient ones under an exponential-backoff schedule, and reports
    exactly what happened ({!run}).

    The pieces compose into the [fq batch] pipeline:
    - {!supervise} — one crash-isolated, retryable unit of work, with a
      telemetry span per attempt;
    - {!fair_share} — per-attempt budget splitting, so [k] attempts
      together never exceed the request's total fuel;
    - {!Breaker} — a circuit breaker keyed to a persistently failing
      component (a domain's decision procedure): after [threshold]
      consecutive failures it opens, the component is short-circuited to
      a structured ["unsupported: circuit open"] error — which sends
      {!Fq_eval.Query.eval_resilient} down its degradation chain instead
      of hammering the broken procedure — and after a cooldown one probe
      is allowed through (half-open);
    - {!parallel_map} — a bounded pool of OCaml 5 domains.  Safe because
      every ambient slot this library maintains (budget, telemetry
      collector, fault plan, tick clock) is domain-local. *)

type crash = { transient : bool; reason : string }
(** A contained escape.  [transient] escapes are retried while attempts
    remain; the rest are reported as-is. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_backoff_ms : float;  (** pause before the first retry *)
  backoff_factor : float;  (** multiplier per further retry *)
  max_backoff_ms : float;  (** backoff cap *)
  sleep : float -> unit;  (** receives milliseconds; injectable for tests *)
  classify : exn -> crash;  (** how escapes map to {!crash} *)
}

val default_policy : policy
(** 3 attempts, 1ms base backoff doubling up to 100ms, [Unix.sleepf],
    and {!default_classify}. *)

val default_classify : exn -> crash
(** [Fault.Injected] keeps its transience (reason ["fault at SITE: ..."]);
    [Budget.Exhausted f] renders via [Budget.error_string]; anything else
    is a non-transient [Printexc.to_string]. *)

type 'a outcome =
  | Value of 'a  (** the final attempt returned *)
  | Crashed of crash  (** every attempt escaped; the last crash *)

type 'a run = {
  outcome : 'a outcome;
  attempts : int;  (** attempts actually made *)
  retried : int;  (** [attempts - 1] *)
  backoffs_ms : float list;  (** the backoff actually scheduled before each retry *)
}

val supervise :
  ?policy:policy -> ?retry_value:('a -> string option) -> name:string -> (int -> 'a) -> 'a run
(** [supervise ~name f] runs [f attempt] (attempts numbered from 1) under
    crash isolation.  A transient crash retries after backoff while
    attempts remain; a non-transient crash (or exhausted attempts)
    finishes with [Crashed].  [retry_value] lets a {e returned} value ask
    for a retry too — the batch runner uses it to retry a structured
    [Partial] verdict, carrying the resume token into the next attempt's
    budget share.  Each attempt runs in a telemetry span
    [supervisor.attempt] with [name]/[attempt] attributes. *)

val fair_share : total:int -> spent:int -> attempt:int -> max_attempts:int -> int
(** Fuel for this attempt: the unspent remainder of [total] divided
    evenly over the attempts left (at least 1), so the attempts together
    stay within [total] while later attempts inherit what earlier ones
    did not use. *)

module Breaker : sig
  type t

  type state = Closed | Open | Half_open

  val create : ?threshold:int -> ?cooldown_ms:float -> ?now_ms:(unit -> float) -> unit -> t
  (** Defaults: [threshold = 3] consecutive failures, [cooldown_ms = 100.].
      [now_ms] is injectable for deterministic tests.  All operations are
      mutex-guarded; a breaker may be shared between worker domains. *)

  val state : t -> state

  val allow : t -> bool
  (** [true] when closed or half-open.  When open, flips to half-open
      (and answers [true]) once the cooldown has elapsed — the probe
      call; until then [false]: short-circuit without calling the
      component. *)

  val success : t -> unit
  (** Close the breaker and reset the consecutive-failure count. *)

  val failure : t -> unit
  (** Count a failure.  Opens the breaker from half-open immediately, or
      from closed once [threshold] consecutive failures accumulate. *)

  val trips : t -> int
  (** How many times the breaker has opened. *)
end

val parallel_map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving map on a pool of [min jobs (length arr)] OCaml 5
    domains (the caller's domain is one of them).  Work is distributed by
    an atomic index, so stragglers do not serialize the tail.  If [f]
    raises, the first escape (in index order) is re-raised after every
    worker has drained — supervised callers should make [f] total. *)
