type action =
  | Trip of Budget.failure
  | Crash of string
  | Flaky of string

type rule =
  | At of { site : string; hits : int list; action : action }
  | Chaos of { sites : string list option; permille : int; actions : action array }

type plan = {
  seed : int;
  rules : rule list;
  counters : (string, int) Hashtbl.t;
  mutable log : (string * int * action) list; (* reversed *)
  lock : Mutex.t;
      (* a plan may be shared between worker domains; the counters and the
         log are the only mutable state, guarded here.  Decisions are pure,
         so the lock is held only around the counter bump and log push. *)
}

exception Injected of { site : string; hit : int; transient : bool; reason : string }

let plan ?(rules = []) ~seed () =
  { seed; rules; counters = Hashtbl.create 16; log = []; lock = Mutex.create () }

let default_actions =
  [ Trip Budget.Fuel_exhausted; Trip Budget.Deadline_exceeded; Crash "injected crash";
    Flaky "injected transient fault" ]

let chaos ?sites ?(permille = 20) ?(actions = default_actions) ~seed () =
  plan ~rules:[ Chaos { sites; permille; actions = Array.of_list actions } ] ~seed ()

(* The fire/no-fire decision and the action choice for the nth hit of a
   site are a pure hash of (seed, site, n): [Hashtbl.hash] is the
   non-seeded, deterministic structural hash, so a schedule replays
   identically across runs and is independent of what other sites did in
   between. *)
let decide_action p site n =
  let rec go = function
    | [] -> None
    | At { site = s; hits; action } :: rest ->
      if String.equal s site && List.mem n hits then Some action else go rest
    | Chaos { sites; permille; actions } :: rest ->
      let applies =
        (match sites with None -> true | Some l -> List.mem site l)
        && Array.length actions > 0
      in
      if applies then begin
        let h = Hashtbl.hash (p.seed, site, n) in
        if h mod 1000 < permille then Some actions.((h / 1000) mod Array.length actions)
        else go rest
      end
      else go rest
  in
  go p.rules

let active_key : plan option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let enabled () = Option.is_some (Domain.DLS.get active_key)

let with_plan p f =
  let saved = Domain.DLS.get active_key in
  Domain.DLS.set active_key (Some p);
  Fun.protect ~finally:(fun () -> Domain.DLS.set active_key saved) f

let hit site =
  match Domain.DLS.get active_key with
  | None -> ()
  | Some p -> (
    Mutex.lock p.lock;
    let n = (match Hashtbl.find_opt p.counters site with Some n -> n | None -> 0) + 1 in
    Hashtbl.replace p.counters site n;
    let act = decide_action p site n in
    (match act with Some a -> p.log <- (site, n, a) :: p.log | None -> ());
    Mutex.unlock p.lock;
    match act with
    | None -> ()
    | Some a ->
      Telemetry.count "fault.injections";
      Telemetry.count ("fault.injections:" ^ site);
      (match a with
      | Trip fl -> raise (Budget.Exhausted fl)
      | Crash reason -> raise (Injected { site; hit = n; transient = false; reason })
      | Flaky reason -> raise (Injected { site; hit = n; transient = true; reason })))

let injections p =
  Mutex.lock p.lock;
  let l = List.rev p.log in
  Mutex.unlock p.lock;
  l

let injection_count p =
  Mutex.lock p.lock;
  let n = List.length p.log in
  Mutex.unlock p.lock;
  n

let transient_exn = function Injected { transient; _ } -> transient | _ -> false

let pp_action ppf = function
  | Trip fl -> Format.fprintf ppf "trip(%a)" Budget.pp_failure fl
  | Crash m -> Format.fprintf ppf "crash(%s)" m
  | Flaky m -> Format.fprintf ppf "flaky(%s)" m
