type crash = { transient : bool; reason : string }

type policy = {
  max_attempts : int;
  base_backoff_ms : float;
  backoff_factor : float;
  max_backoff_ms : float;
  sleep : float -> unit;
  classify : exn -> crash;
}

let default_classify = function
  | Fault.Injected { site; transient; reason; _ } ->
    { transient; reason = Printf.sprintf "fault at %s: %s" site reason }
  | Budget.Exhausted fl -> { transient = false; reason = Budget.error_string fl }
  | e -> { transient = false; reason = Printexc.to_string e }

let default_policy =
  {
    max_attempts = 3;
    base_backoff_ms = 1.0;
    backoff_factor = 2.0;
    max_backoff_ms = 100.0;
    sleep = (fun ms -> Unix.sleepf (ms /. 1000.));
    classify = default_classify;
  }

type 'a outcome = Value of 'a | Crashed of crash

type 'a run = {
  outcome : 'a outcome;
  attempts : int;
  retried : int;
  backoffs_ms : float list;
}

let backoff_for policy retry =
  (* [retry] counts from 1: the pause before the first retry is the base. *)
  Float.min policy.max_backoff_ms
    (policy.base_backoff_ms *. (policy.backoff_factor ** float_of_int (retry - 1)))

let supervise ?(policy = default_policy) ?retry_value ~name f =
  let max_attempts = max 1 policy.max_attempts in
  let backoffs = ref [] in
  let pause attempt =
    let ms = backoff_for policy attempt in
    backoffs := ms :: !backoffs;
    Telemetry.count "supervisor.retries";
    if ms > 0. then policy.sleep ms
  in
  let finish attempt outcome =
    { outcome; attempts = attempt; retried = attempt - 1; backoffs_ms = List.rev !backoffs }
  in
  let attempt_once attempt =
    Telemetry.with_span "supervisor.attempt"
      ~attrs:[ ("name", Telemetry.Str name); ("attempt", Telemetry.Int attempt) ]
      (fun () -> match f attempt with v -> Ok v | exception e -> Error (policy.classify e))
  in
  let rec go attempt =
    match attempt_once attempt with
    | Ok v -> (
      match retry_value with
      | Some should when attempt < max_attempts -> (
        match should v with
        | Some _why ->
          pause attempt;
          go (attempt + 1)
        | None -> finish attempt (Value v))
      | _ -> finish attempt (Value v))
    | Error crash ->
      Telemetry.count "supervisor.crashes";
      if crash.transient && attempt < max_attempts then begin
        pause attempt;
        go (attempt + 1)
      end
      else finish attempt (Crashed crash)
  in
  go 1

let fair_share ~total ~spent ~attempt ~max_attempts =
  let left = max 1 (max_attempts - attempt + 1) in
  max 1 ((max 0 (total - spent) + left - 1) / left)

module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    threshold : int;
    cooldown_ms : float;
    now_ms : unit -> float;
    lock : Mutex.t;
    mutable st : state;
    mutable consecutive : int;
    mutable opened_at : float;
    mutable trips : int;
  }

  let create ?(threshold = 3) ?(cooldown_ms = 100.) ?now_ms () =
    let now_ms =
      match now_ms with Some f -> f | None -> fun () -> Unix.gettimeofday () *. 1000.
    in
    {
      threshold = max 1 threshold;
      cooldown_ms;
      now_ms;
      lock = Mutex.create ();
      st = Closed;
      consecutive = 0;
      opened_at = 0.;
      trips = 0;
    }

  let locked b f =
    Mutex.lock b.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock b.lock) f

  let state b = locked b (fun () -> b.st)
  let trips b = locked b (fun () -> b.trips)

  let allow b =
    locked b (fun () ->
        match b.st with
        | Closed | Half_open -> true
        | Open ->
          if b.now_ms () -. b.opened_at >= b.cooldown_ms then begin
            b.st <- Half_open;
            true
          end
          else false)

  let success b =
    locked b (fun () ->
        b.consecutive <- 0;
        b.st <- Closed)

  let trip b =
    b.st <- Open;
    b.opened_at <- b.now_ms ();
    b.trips <- b.trips + 1;
    b.consecutive <- 0;
    Telemetry.count "supervisor.breaker_trips"

  let failure b =
    locked b (fun () ->
        match b.st with
        | Half_open -> trip b
        | Closed | Open ->
          b.consecutive <- b.consecutive + 1;
          if b.st = Closed && b.consecutive >= b.threshold then trip b)
end

let parallel_map ~jobs f arr =
  let n = Array.length arr in
  let jobs = min (max 1 jobs) n in
  if jobs <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            errors.(i) <- Some (e, bt));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.iter
      (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end
