(** Always-on aggregation for the serving plane: fixed log-bucketed
    (HDR-style) histograms, and a versioned Prometheus text exposition
    with its parser.

    Where {!Telemetry} is request-scoped (a collector lives for one
    evaluation), these primitives accumulate for the process lifetime
    and answer quantile queries from a fixed quarter-octave bucket
    ladder: observation is an O(1) array increment with no allocation,
    and two histograms observed on different worker domains merge
    bucket-wise with no loss beyond the bucket width already accepted at
    observe time.

    Nothing here locks — callers synchronise (the serve registry holds
    its own mutex). *)

(** {1 Bucket ladder} *)

val bucket_count : int
(** Number of buckets (128); the last is a +Inf catch-all. *)

val bucket_le : int -> float
(** Upper bound of bucket [i]: [2^((i - 62) / 4)], so consecutive
    bounds differ by [2^(1/4)] (~19%); [infinity] for the last. *)

val bucket_index : float -> int
(** Smallest [i] with [v <= bucket_le i]; values [<= 0] (and [nan])
    land in bucket 0, [infinity] in the last. *)

(** {1 Histograms} *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array;
}

val create : unit -> hist
val observe : hist -> float -> unit
val count : hist -> int
val sum : hist -> float

val merge : into:hist -> hist -> unit
(** Bucket-wise add of [src] into [into]. *)

val quantile : hist -> float -> float
(** [quantile h q] (with [q] clamped to [0..1]) estimates the [q]th
    quantile as the upper bound of the first bucket whose cumulative
    count reaches [q * count h], clamped to the observed min/max — exact
    up to one bucket width.  [nan] when empty. *)

(** {1 Prometheus text exposition} *)

val exposition_version : int
(** Version stamped in the first line
    ([# fq-metrics-exposition <n>]); bumping the grammar bumps this. *)

type family

val counter_family :
  name:string ->
  help:string ->
  ((string * string) list * int) list ->
  family
(** A counter family: each sample is (labels, monotonic count). *)

val gauge_family :
  name:string ->
  help:string ->
  ((string * string) list * float) list ->
  family

val histogram_family :
  name:string -> help:string -> ((string * string) list * hist) list -> family

val escape_label_value : string -> string
(** Escapes backslash, double-quote and newline per the Prometheus text
    format. *)

val exposition : family list -> string
(** Renders the versioned text exposition: version header first, then
    families sorted by name, each with [# HELP] / [# TYPE] lines and
    samples sorted by canonical label string.  Histograms render only
    buckets that advance the cumulative count, plus the mandatory +Inf
    terminal, followed by [_sum] and [_count]. *)

val parse_exposition : string -> (string * (string * string) list * float) list
(** Inverse of {!exposition} for scrapers ([fq top], the CI smoke job):
    returns each sample line as (metric, labels, value) with label
    values unescaped.  Raises [Failure] on grammar violations, including
    a missing or mismatched version header. *)
