(** Unified resource governor.

    Every long-running engine in the system (enumeration, quantifier
    elimination, relational-algebra evaluation, Turing-machine simulation,
    constraint-database evaluation) accepts an optional [Budget.t] and
    checkpoints through it.  A budget combines
    - step fuel (a count of abstract work units),
    - a wall-clock deadline,
    - a result-cardinality cap, and
    - a cooperative cancellation hook,
    and converts overruns into the structured {!failure} taxonomy instead of
    hangs, [failwith], or [invalid_arg].

    The paper's Theorems 3.1/3.3 show that query finiteness over T is
    undecidable, so a bound of this kind is the only way a production
    evaluator can accept arbitrary queries and still terminate. *)

type failure =
  | Fuel_exhausted
  | Deadline_exceeded
  | Oversize of int  (** result cardinality exceeded the cap; payload = cap *)
  | Cancelled
  | Unsupported of string
      (** the input is outside the engine's supported fragment (e.g. a
          Cooper divisor LCM beyond the native expansion range) *)

exception Exhausted of failure
(** Raised by the checkpoint helpers when the budget runs dry.  Engines let
    it propagate; front-ends convert it back to data with {!guard} or
    {!protect}. *)

type t

val make :
  ?fuel:int -> ?timeout_ms:int -> ?max_result:int -> ?cancel:(unit -> bool) -> unit -> t
(** Fresh governor.  Omitted dimensions are unlimited.  The deadline clock
    starts at [make] time. *)

val unlimited : unit -> t
(** A budget that never trips (checkpoints still count ticks). *)

val of_fuel : ?share:bool -> int -> t
(** Fuel-only budget, for back-compat with the legacy [~fuel] integers.
    [share] (default [true]) controls whether {!guard} installs it as the
    ambient budget; legacy call sites pass [~share:false] so that only the
    engine that created the budget ticks it, preserving historical fuel
    accounting exactly. *)

val with_deadline : timeout_ms:int -> t
(** Deadline-only budget. *)

(** {1 Checkpoints} — cheap enough for inner loops. *)

val tick : t -> unit
(** Charge one work unit.  Raises {!Exhausted} on overrun.  The wall clock
    and the cancellation hook are polled every 256 ticks, so a pure-OCaml
    loop that ticks stays responsive without a syscall per iteration. *)

val charge : t -> int -> unit
(** Charge [n] work units at once (e.g. the cardinality of an intermediate
    relation). *)

val ensure_size : t -> int -> unit
(** Raise [Exhausted (Oversize cap)] if [n] exceeds the result-cardinality
    cap. *)

val check : t -> failure option
(** Non-raising probe: [Some f] if the budget is already dry. *)

val exhausted : t -> bool

val unsupported : string -> 'a
(** [unsupported msg] raises [Exhausted (Unsupported msg)] — the structured
    replacement for [failwith] on inputs outside an engine's fragment. *)

(** {1 Ambient budget}

    Decision procedures are reached through the fixed
    [Fq_domain.Domain.S.decide] signature, which cannot carry a budget
    argument.  [guard] therefore installs its budget in a dynamically-scoped
    slot that the QE inner loops poll with {!tick_ambient}; the slot is
    restored on exit, so nesting is safe.  The slot is domain-local
    ([Domain.DLS]), so concurrent workers of a {!Supervisor} pool cannot
    observe (or charge) each other's budgets. *)

val tick_ambient : unit -> unit
(** {!tick} against the ambient budget; no-op when none is installed. *)

val charge_ambient : int -> unit

val ambient : unit -> t option

val guard : t -> (unit -> 'a) -> ('a, failure) result
(** Run a thunk under the budget: installs it as the ambient budget (unless
    it was created with [~share:false]) and converts an {!Exhausted} escape
    into [Error].  Other exceptions propagate. *)

val protect : ?budget:t -> (unit -> ('a, string) result) -> ('a, string) result
(** Boundary adapter for string-error engine entry points: runs the thunk
    under [budget] (if any) and renders an {!Exhausted} escape with
    {!error_string}, so existing [('a, string) result] signatures keep
    working while front-ends recover the structure via
    {!failure_of_string}. *)

(** {1 Failure rendering} *)

val pp_failure : Format.formatter -> failure -> unit

val error_string : failure -> string
(** Stable, parseable rendering: ["budget: fuel exhausted"],
    ["budget: deadline exceeded"], ["budget: result size over N"],
    ["budget: cancelled"], ["unsupported: MSG"]. *)

val failure_of_string : string -> failure option
(** Inverse of {!error_string} on its range. *)

(** {1 Accounting} *)

type usage = { ticks : int; elapsed_ms : float }

val usage : t -> usage
val spent : t -> int

val global_ticks : unit -> int
(** Monotone {e domain-local} count of work units charged across every
    budget this domain has ticked since it started.  {!Telemetry} samples
    it at span open and close, so fuel is attributed to the innermost open
    span no matter which budget was charged.  Like the ambient slot, the
    clock lives in [Domain.DLS]: each worker of a parallel batch attributes
    only its own work. *)
