(** Deterministic fault injection.

    The paper's negative results (Theorems 3.1/3.3) make runtime failure
    intrinsic: an evaluator for arbitrary queries can never statically
    trust an input, so budget blow-ups, non-terminating decision
    procedures and oversize answers are normal operating conditions — and
    the governor ({!Budget}) and supervisor ({!Supervisor}) that contain
    them must be {e provably} crash-safe under induced failure, not just
    in the happy path.

    This module is the chaos harness behind that proof obligation.  Every
    engine hot path declares a {e named injection site} — a call to
    {!hit} next to its governor checkpoint — and a test installs a
    {!plan} that injects faults on a reproducible schedule.  The schedule
    is a pure function of [(seed, site, nth-hit)], so a failing chaos
    case replays exactly from its seed, independent of wall-clock, GC, or
    scheduling.

    Sites threaded through the engines (PR 5):
    - ["decide"] — the {!Fq_domain.Domain.S.decide} boundary crossed by
      the enumeration evaluator,
    - ["decide_cache.lookup"] — every memoized decision lookup,
    - ["relalg.node"] — each relational-algebra operator materialization,
    - ["enumerate.scan"], ["enumerate.certify"], ["enumerate.resume"] —
      the §1.1 scan, its completeness certification, and resume-token
      re-entry,
    - ["qe.cooper"], ["qe.nat_succ"], ["qe.nat_order"], ["qe.reach"],
      ["qe.eq"] — the quantifier-elimination rewrite loops.

    File-I/O sites on the serve persistence path (PR 8):
    - ["journal.append"] — before each decide-cache journal record write
      (models a short write / ENOSPC; the record is simply lost, the
      journal prefix stays valid),
    - ["journal.rotate"] — before the compaction temp+rename (models a
      torn rename; the pre-compaction journal survives intact),
    - ["decide_cache.snapshot.save"] — before a snapshot write opens its
      temp file (models a full disk / permission flip; the existing
      snapshot must survive byte-identical — rename is the only publish).

    Process-supervision sites on the fleet path (PR 10):
    - ["fleet.spawn"] — before the parent forks a worker process (models
      fork/exec failure; the worker takes a crash-restart backoff path),
    - ["fleet.probe"] — before each over-the-wire health probe (models a
      probe timeout; enough consecutive failures convict the worker).

    When no plan is installed (the production configuration) a site costs
    one domain-local read and a branch — the same class of overhead as a
    disabled telemetry counter.  The ambient plan is domain-local
    ([Domain.DLS]); a plan shared between worker domains is internally
    locked, so concurrent hits are safe (though their interleaving, and
    hence the per-site hit numbering, is then scheduler-dependent — for
    reproducibility give each worker its own seeded plan). *)

type action =
  | Trip of Budget.failure
      (** Raise [Budget.Exhausted] — an induced governor trip.  Flows
          through the same structured-failure paths as a genuine one. *)
  | Crash of string
      (** Raise {!Injected} with [transient = false] — a spurious
          exception that models a hard crash inside an engine.  The
          supervisor contains it; retrying is pointless. *)
  | Flaky of string
      (** Raise {!Injected} with [transient = true] — a transient
          failure.  Because per-site hit counters advance monotonically
          across attempts, a retry replays {e past} the faulted hit and
          can succeed: this is what retry-with-backoff is for. *)

type rule =
  | At of { site : string; hits : int list; action : action }
      (** Fire [action] exactly at the given hit numbers of [site]
          (1-based).  For surgical tests: "kill the scan at its 3rd
          candidate". *)
  | Chaos of { sites : string list option; permille : int; actions : action array }
      (** On each hit of a matching site ([None] = every site), fire with
          probability [permille]/1000, choosing the action
          deterministically from [actions].  Both the fire/no-fire
          decision and the choice are pure functions of
          [(seed, site, nth-hit)]. *)

type plan
(** A fault schedule plus its mutable replay state: per-site hit
    counters and the log of injections performed.  Counters advance
    monotonically for the lifetime of the plan (they are {e not} reset
    per attempt — that is what makes [Flaky] faults transient). *)

exception Injected of { site : string; hit : int; transient : bool; reason : string }
(** The spurious-exception channel ([Crash]/[Flaky] actions).  [Trip]
    actions raise [Budget.Exhausted] instead. *)

val plan : ?rules:rule list -> seed:int -> unit -> plan
(** A plan with an explicit rule list (first matching rule fires). *)

val chaos :
  ?sites:string list -> ?permille:int -> ?actions:action list -> seed:int -> unit -> plan
(** Convenience single-{!Chaos}-rule plan.  Defaults: all sites,
    [permille = 20], and an action mix of one of each kind. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Install the plan as this domain's ambient fault schedule for the
    duration of the thunk (save/restore, nesting-safe).  The same plan
    may be re-installed across attempts or shared between domains; its
    counters persist. *)

val enabled : unit -> bool
(** Is a plan installed in this domain? *)

val hit : string -> unit
(** [hit site] — an injection site.  No-op unless a plan is installed;
    otherwise advances the site's hit counter and raises if the schedule
    says so. *)

val injections : plan -> (string * int * action) list
(** The injections performed so far, in order: (site, hit number,
    action).  Deterministic for a fixed seed and a deterministic
    workload. *)

val injection_count : plan -> int

val transient_exn : exn -> bool
(** [true] exactly for [Injected {transient = true; _}] — the
    supervisor's retry test. *)

val pp_action : Format.formatter -> action -> unit
