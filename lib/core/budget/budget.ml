type failure =
  | Fuel_exhausted
  | Deadline_exceeded
  | Oversize of int
  | Cancelled
  | Unsupported of string

exception Exhausted of failure

type t = {
  fuel_limit : int; (* max_int = unlimited *)
  deadline : float; (* absolute gettimeofday; infinity = none *)
  max_result : int; (* max_int = uncapped *)
  cancelled : unit -> bool;
  shared : bool; (* eligible to become the ambient budget under [guard] *)
  started : float;
  mutable spent : int;
}

let never_cancelled () = false

let now () = Unix.gettimeofday ()

(* Per-domain tick clock: every budget advances it alongside its own
   [spent].  The telemetry layer reads it at span boundaries to attribute
   fuel to the innermost open span, whichever budget (explicit, ambient, or
   legacy [~share:false]) was charged.  The clock is domain-local
   ([Domain.DLS]) rather than a process-global ref: the supervised batch
   runner evaluates queries on a pool of OCaml 5 domains, and a shared
   counter would both race (lost increments) and corrupt every worker's
   span attribution with the other workers' ticks. *)
let ticks_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let global_ticks () = !(Domain.DLS.get ticks_key)

let make ?fuel ?timeout_ms ?max_result ?cancel () =
  let started = now () in
  {
    fuel_limit = Option.value fuel ~default:max_int;
    deadline =
      (match timeout_ms with
      | None -> infinity
      | Some ms -> started +. (float_of_int ms /. 1000.));
    max_result = Option.value max_result ~default:max_int;
    cancelled = Option.value cancel ~default:never_cancelled;
    shared = true;
    started;
    spent = 0;
  }

let unlimited () = make ()

let of_fuel ?(share = true) fuel =
  let b = make ~fuel () in
  if share then b else { b with shared = false }

let with_deadline ~timeout_ms = make ~timeout_ms ()

(* Deadline and cancellation are polled only every [slow_mask + 1] ticks:
   a gettimeofday per checkpoint would dominate tight QE loops. *)
let slow_mask = 255

let slow_check b =
  if b.cancelled () then raise (Exhausted Cancelled);
  if now () > b.deadline then raise (Exhausted Deadline_exceeded)

let tick b =
  let n = b.spent + 1 in
  b.spent <- n;
  incr (Domain.DLS.get ticks_key);
  if n > b.fuel_limit then raise (Exhausted Fuel_exhausted);
  if n land slow_mask = 0 && (b.deadline < infinity || b.cancelled != never_cancelled)
  then slow_check b

let charge b n =
  if n > 0 then begin
    b.spent <- b.spent + n;
    let t = Domain.DLS.get ticks_key in
    t := !t + n;
    if b.spent > b.fuel_limit then raise (Exhausted Fuel_exhausted);
    if b.deadline < infinity || b.cancelled != never_cancelled then slow_check b
  end

let ensure_size b n = if n > b.max_result then raise (Exhausted (Oversize b.max_result))

let check b =
  if b.cancelled () then Some Cancelled
  else if b.spent > b.fuel_limit then Some Fuel_exhausted
  else if now () > b.deadline then Some Deadline_exceeded
  else None

let exhausted b = Option.is_some (check b)

let unsupported msg = raise (Exhausted (Unsupported msg))

(* Ambient (dynamically-scoped) budget, so decision procedures behind the
   fixed [Domain.S.decide] signature can still checkpoint.  The slot is
   domain-local: with a process-global ref, a [guard] in one worker domain
   of the batch pool would install its budget into every other worker's
   decision procedures (and the save/restore discipline would reinstate a
   foreign budget on exit). *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ambient () = Domain.DLS.get current_key

let tick_ambient () =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some b -> tick b

let charge_ambient n =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some b -> charge b n

let guard b f =
  let saved = Domain.DLS.get current_key in
  if b.shared then Domain.DLS.set current_key (Some b);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set current_key saved)
    (fun () -> match f () with v -> Ok v | exception Exhausted fl -> Error fl)

let pp_failure ppf = function
  | Fuel_exhausted -> Format.pp_print_string ppf "fuel exhausted"
  | Deadline_exceeded -> Format.pp_print_string ppf "deadline exceeded"
  | Oversize n -> Format.fprintf ppf "result size over %d" n
  | Cancelled -> Format.pp_print_string ppf "cancelled"
  | Unsupported msg -> Format.fprintf ppf "unsupported: %s" msg

let error_string = function
  | Fuel_exhausted -> "budget: fuel exhausted"
  | Deadline_exceeded -> "budget: deadline exceeded"
  | Oversize n -> Printf.sprintf "budget: result size over %d" n
  | Cancelled -> "budget: cancelled"
  | Unsupported msg -> "unsupported: " ^ msg

let failure_of_string s =
  let prefix p = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if s = "budget: fuel exhausted" then Some Fuel_exhausted
  else if s = "budget: deadline exceeded" then Some Deadline_exceeded
  else if s = "budget: cancelled" then Some Cancelled
  else if prefix "budget: result size over " then
    int_of_string_opt (after "budget: result size over ") |> Option.map (fun n -> Oversize n)
  else if prefix "unsupported: " then Some (Unsupported (after "unsupported: "))
  else None

let protect ?budget f =
  let run () = match f () with r -> r | exception Exhausted fl -> Error (error_string fl) in
  match budget with
  | None -> run ()
  | Some b -> (
    match guard b run with
    | Ok r -> r
    | Error fl -> Error (error_string fl))

type usage = { ticks : int; elapsed_ms : float }

let usage b = { ticks = b.spent; elapsed_ms = (now () -. b.started) *. 1000. }

let spent b = b.spent
