(* Minimal JSON: a compact printer and a recursive-descent parser.

   Hand-rolled on purpose — the toolchain image carries no JSON library,
   and the protocol needs only the standard scalar/array/object forms.
   Integers that do not fit the native word are kept as decimal literals
   ([Intlit]) so database values backed by Bigint round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Intlit of string
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------ printing ---------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Intlit s -> Buffer.add_string buf s
  | Float f -> Buffer.add_string buf (float_literal f)
  | Str s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ------------------------------ parsing ----------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           (* decode the code point to UTF-8; surrogate pairs re-combine *)
           let c1 = hex4 () in
           let cp =
             if c1 >= 0xD800 && c1 <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
                && s.[!pos + 1] = 'u' then begin
               pos := !pos + 2;
               let c2 = hex4 () in
               if c2 >= 0xDC00 && c2 <= 0xDFFF then
                 0x10000 + ((c1 - 0xD800) lsl 10) + (c2 - 0xDC00)
               else c1
             end
             else c1
           in
           if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
           else if cp < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
           end
           else if cp < 0x10000 then begin
             Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
             Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
           end
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if lit = "" || lit = "-" then fail "bad number";
    if !is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Intlit lit (* wider than the native word: keep the literal *)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (p, msg) -> Error (Printf.sprintf "json: at %d: %s" p msg)

(* ------------------------------ access ------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Intlit s -> int_of_string_opt s
  | Float f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | Intlit s -> float_of_string_opt s
  | _ -> None

let to_str_opt = function Str s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
