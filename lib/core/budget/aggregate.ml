(* Always-on aggregation primitives for the serving plane: fixed
   log-bucketed (HDR-style) histograms, monotonic counters with label
   dimensions, and a versioned Prometheus text exposition.

   Telemetry (telemetry.ml) is request-scoped: a collector lives for one
   evaluation and its histograms keep only count/sum/min/max.  The serve
   daemon needs the opposite trade: metrics that accumulate for the
   process lifetime, answer quantile queries, and render to a scrape
   format — at a cost low enough to leave on permanently.  A fixed
   bucket layout makes observation O(1) (a log2 and an array increment,
   no allocation) and makes merged histograms associative: two hists
   observed on different worker domains merge bucket-wise with no loss
   beyond the bucket width that was already accepted at observe time. *)

(* ---- bucket layout ------------------------------------------------ *)

(* Bucket upper bounds follow a quarter-octave geometric ladder:
   le(i) = 2 ^ ((i - zero_bucket) / 4), i.e. consecutive bounds differ
   by 2^(1/4) ~ 19%.  With 128 buckets the ladder spans ~2.4e-5 .. 6.2e4
   relative to the unit, which covers microsecond-to-minute latencies in
   milliseconds and 1..60k-tick fuel budgets alike; the last bucket is a
   +Inf catch-all so totals are always conserved. *)

let bucket_count = 128
let zero_bucket = 62 (* le(zero_bucket) = 1.0 *)
let subdiv = 4.0 (* buckets per octave *)

let bucket_le i =
  if i >= bucket_count - 1 then infinity
  else Float.pow 2.0 (float_of_int (i - zero_bucket) /. subdiv)

let bucket_index v =
  if not (Float.is_finite v) || v <= 0.0 then
    if v > 0.0 then bucket_count - 1 else 0
  else
    (* smallest i with v <= le(i) *)
    let raw = ceil (subdiv *. (Float.log2 v)) in
    let i = int_of_float raw + zero_bucket in
    if i < 0 then 0 else if i > bucket_count - 1 then bucket_count - 1 else i

(* ---- histograms --------------------------------------------------- *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array;
}

let create () =
  { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
    buckets = Array.make bucket_count 0 }

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let count h = h.h_count
let sum h = h.h_sum

let merge ~into src =
  into.h_count <- into.h_count + src.h_count;
  into.h_sum <- into.h_sum +. src.h_sum;
  if src.h_min < into.h_min then into.h_min <- src.h_min;
  if src.h_max > into.h_max then into.h_max <- src.h_max;
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets

(* Quantile estimate: the upper bound of the first bucket whose
   cumulative count reaches q * count.  The estimate is exact up to one
   bucket width (~19% relative), which is the resolution contract the
   QCheck conservation property pins. *)
let quantile h q =
  if h.h_count = 0 then nan
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = q *. float_of_int h.h_count in
    let acc = ref 0 and i = ref 0 and ans = ref infinity in
    (try
       while !i < bucket_count do
         acc := !acc + h.buckets.(!i);
         if float_of_int !acc >= rank && !acc > 0 then begin
           ans := bucket_le !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    (* clamp to the observed range so p100 of a +Inf bucket stays honest *)
    if !ans > h.h_max then h.h_max else if !ans < h.h_min then h.h_min else !ans
  end

(* ---- Prometheus text exposition ----------------------------------- *)

(* The exposition is versioned by its first line; bumping the grammar
   means bumping this constant and the cram pins with it. *)
let exposition_version = 1

type value = Counter of int | Gauge of float
type family = {
  f_name : string;
  f_help : string;
  f_kind : [ `Counter | `Gauge | `Histogram ];
  f_counters : ((string * string) list * value) list;
  f_hists : ((string * string) list * hist) list;
}

let counter_family ~name ~help samples =
  { f_name = name; f_help = help; f_kind = `Counter;
    f_counters = List.map (fun (l, n) -> (l, Counter n)) samples;
    f_hists = [] }

let gauge_family ~name ~help samples =
  { f_name = name; f_help = help; f_kind = `Gauge;
    f_counters = List.map (fun (l, v) -> (l, Gauge v)) samples;
    f_hists = [] }

let histogram_family ~name ~help samples =
  { f_name = name; f_help = help; f_kind = `Histogram;
    f_counters = []; f_hists = samples }

(* Label values escape backslash, double-quote and newline, per the
   Prometheus text-format spec. *)
let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Labels render sorted by label name so a sample's identity is a
   canonical string: deterministic across Domain interleavings and
   Hashtbl orders. *)
let render_labels = function
  | [] -> ""
  | labels ->
      let labels =
        List.sort (fun (a, _) (b, _) -> compare a b) labels
      in
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%g" v

let render_le i = if i >= bucket_count - 1 then "+Inf" else float_str (bucket_le i)

let exposition families =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "# fq-metrics-exposition %d\n" exposition_version);
  let families =
    List.sort (fun a b -> compare a.f_name b.f_name) families
  in
  List.iter
    (fun f ->
      let kind =
        match f.f_kind with
        | `Counter -> "counter"
        | `Gauge -> "gauge"
        | `Histogram -> "histogram"
      in
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" f.f_name f.f_help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" f.f_name kind);
      let scalar_lines =
        List.map
          (fun (labels, v) ->
            let v =
              match v with Counter n -> float_of_int n | Gauge g -> g
            in
            Printf.sprintf "%s%s %s\n" f.f_name (render_labels labels)
              (float_str v))
          f.f_counters
      in
      List.iter (Buffer.add_string b) (List.sort compare scalar_lines);
      let hist_blocks =
        List.map
          (fun (labels, h) ->
            let hb = Buffer.create 256 in
            let cum = ref 0 in
            Array.iteri
              (fun i n ->
                cum := !cum + n;
                (* render only buckets that advance the cumulative count,
                   plus the mandatory +Inf terminal — the full 128-rung
                   ladder would bloat every scrape 100x for no
                   information *)
                if n > 0 || i = bucket_count - 1 then
                  Buffer.add_string hb
                    (Printf.sprintf "%s_bucket%s %d\n" f.f_name
                       (render_labels (labels @ [ ("le", render_le i) ]))
                       !cum))
              h.buckets;
            Buffer.add_string hb
              (Printf.sprintf "%s_sum%s %s\n" f.f_name (render_labels labels)
                 (float_str h.h_sum));
            Buffer.add_string hb
              (Printf.sprintf "%s_count%s %d\n" f.f_name (render_labels labels)
                 h.h_count);
            Buffer.contents hb)
          f.f_hists
      in
      List.iter (Buffer.add_string b) (List.sort compare hist_blocks))
    families;
  Buffer.contents b

(* ---- exposition parsing ------------------------------------------- *)

(* The inverse, used by [fq top] and the CI smoke job ("the exposition
   parses").  Returns each sample line as (metric, labels, value);
   comment lines are validated for shape and dropped.  Raises
   [Failure] on grammar violations — including a missing or wrong
   version header, so scraping a future incompatible server fails
   loudly instead of mis-rendering. *)

let parse_labels s =
  (* s = contents between '{' and '}' *)
  let n = String.length s in
  let labels = ref [] in
  let i = ref 0 in
  while !i < n do
    let eq =
      match String.index_from_opt s !i '=' with
      | Some e -> e
      | None -> failwith "exposition: label without '='"
    in
    let name = String.sub s !i (eq - !i) in
    if eq + 1 >= n || s.[eq + 1] <> '"' then
      failwith "exposition: unquoted label value";
    let b = Buffer.create 16 in
    let j = ref (eq + 2) in
    let closed = ref false in
    while not !closed do
      if !j >= n then failwith "exposition: unterminated label value";
      (match s.[!j] with
      | '\\' ->
          if !j + 1 >= n then failwith "exposition: dangling escape";
          (match s.[!j + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | '\\' -> Buffer.add_char b '\\'
          | '"' -> Buffer.add_char b '"'
          | c -> Buffer.add_char b c);
          j := !j + 2
      | '"' ->
          closed := true;
          incr j
      | c ->
          Buffer.add_char b c;
          incr j);
    done;
    labels := (name, Buffer.contents b) :: !labels;
    if !j < n && s.[!j] = ',' then incr j;
    i := !j
  done;
  List.rev !labels

let parse_value s =
  match s with
  | "+Inf" -> infinity
  | "-Inf" -> neg_infinity
  | s -> (
      match float_of_string_opt s with
      | Some v -> v
      | None -> failwith ("exposition: bad sample value " ^ s))

let parse_exposition text =
  let lines = String.split_on_char '\n' text in
  (match lines with
  | first :: _
    when first = Printf.sprintf "# fq-metrics-exposition %d" exposition_version
    ->
      ()
  | _ -> failwith "exposition: missing or unsupported version header");
  List.filter_map
    (fun line ->
      if line = "" then None
      else if String.length line > 0 && line.[0] = '#' then None
      else
        match String.rindex_opt line ' ' with
        | None -> failwith ("exposition: malformed sample line: " ^ line)
        | Some sp ->
            let series = String.sub line 0 sp in
            let value =
              parse_value (String.sub line (sp + 1) (String.length line - sp - 1))
            in
            let metric, labels =
              match String.index_opt series '{' with
              | None -> (series, [])
              | Some ob ->
                  if series.[String.length series - 1] <> '}' then
                    failwith ("exposition: unterminated labels: " ^ line);
                  ( String.sub series 0 ob,
                    parse_labels
                      (String.sub series (ob + 1)
                         (String.length series - ob - 2)) )
            in
            Some (metric, labels, value))
    lines
