(** Structured tracing and metrics.

    The engine's three nontrivial runtime behaviours — the resilient
    degradation chain, the governor's fuel/deadline accounting, and the QE
    rewrite loops — are invisible from the outside.  This module makes them
    observable without perturbing them: hierarchical {e spans}
    ({!with_span}), monotonic {e counters} ({!count}) and {e histograms}
    ({!observe}), recorded only while a collector is installed.

    {b Hot-path contract.}  Every instrumentation entry point first reads
    one [ref]; when telemetry is off (the default) that single branch is the
    entire cost, so engines instrument their inner loops freely.  The bench
    ablation ([dune exec bench/main.exe -- json-pr4]) pins the overhead of
    the disabled path and of the no-op sink below 2%.

    {b Budget attribution.}  Spans read {!Budget.global_ticks} — the
    process-wide tick clock every budget advances — at open and close, so a
    span's [ticks] is exactly the fuel charged while it was open and
    [self_ticks] is the part no child span accounts for.  Fuel is thereby
    charged to the {e innermost open span}: a trace shows which QE loop or
    algebra node spent the budget. *)

type value = Int of int | Float of float | Bool of bool | Str of string

type span = {
  name : string;
  attrs : (string * value) list;
  start_ms : float;  (** offset from the start of the recording *)
  dur_ms : float;
  self_ms : float;  (** [dur_ms] minus the children's [dur_ms] *)
  ticks : int;  (** budget ticks charged while the span was open *)
  self_ticks : int;  (** [ticks] minus the children's [ticks] *)
  children : span list;
}

type histogram = { count : int; sum : float; min : float; max : float }

type report = {
  roots : span list;
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histogram) list;  (** sorted by name *)
  dropped_spans : int;  (** spans not recorded because the cap was hit *)
  evicted_histograms : int;
      (** cold histogram keys evicted past the key-space cap *)
  trace_id : string option;  (** set by {!set_trace_id}, else [None] *)
}

(** {1 Instrumentation points}

    All of these are a single branch when no collector is installed, and
    cheap (no syscalls beyond one [gettimeofday] per span) when one is. *)

val enabled : unit -> bool
(** [true] iff a collector (no-op or recording) is installed. *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The span closes when [f]
    returns or raises (the exception propagates).  Nested calls build the
    tree. *)

val set_attr : string -> value -> unit
(** Attach an attribute to the innermost open span; no-op when none. *)

val count : ?n:int -> string -> unit
(** Bump a named monotonic counter by [n] (default 1). *)

val observe : string -> float -> unit
(** Record one observation into a named histogram.  The histogram key
    space is bounded: past the collector's cap (see {!record}) the least
    recently observed key is evicted (its cell dropped, the eviction
    tallied in [evicted_histograms]) so adversarial streams of fresh
    names — e.g. per-fingerprint [relalg.node_card.<fp>] under a hostile
    query mix — cannot grow a collector without limit. *)

val set_trace_id : string -> unit
(** Stamp the ambient recording collector with a request trace id; the
    id surfaces as [trace_id] in the report.  No-op when no recording
    collector is installed.  Last write wins. *)

val trace_id : unit -> string option
(** The ambient collector's trace id, if a collector is installed and
    one was stamped. *)

(** {1 Recording} *)

val record : ?max_spans:int -> ?max_histos:int -> (unit -> 'a) -> 'a * report
(** Run a thunk with a recording collector installed (restoring the
    previous one after) and return its result with the recorded report.
    At most [max_spans] (default 20_000) spans are kept; further
    [with_span]s still run their thunks but are tallied in
    [dropped_spans].  At most [max_histos] (default 1024; [<= 0] =
    unbounded) histogram keys are kept, LRU-evicting past the cap into
    [evicted_histograms]. *)

val with_noop : (unit -> 'a) -> 'a
(** Run a thunk with the no-op sink installed: every instrumentation point
    is reached ([enabled () = true]) but events are discarded immediately.
    Exists so the observation path itself can be tested and benchmarked. *)

(** {1 Analysis} *)

val total_ticks : report -> int
(** Sum of the root spans' [ticks]. *)

val attribution : report -> (string * int) list
(** Self-tick totals aggregated by span name, descending (ties by name) —
    the "where did the budget go" table. *)

(** Sibling spans of the same name collapsed into one node (the
    [pp_pretty] aggregation), also used to keep sampled-trace payloads
    compact in [fq serve]. *)
type rollup = {
  r_name : string;
  r_count : int;
  r_ticks : int;
  r_self_ticks : int;
  r_dur_ms : float;
  r_attrs : (string * value) list;  (** only when the group is a singleton *)
  r_children : rollup list;
}

val rollup : span list -> rollup list

(** {1 Sinks}

    Renderers over a finished {!report}.  [pp_pretty] aggregates sibling
    spans of the same name ([name xN]) so exhaustive traces stay readable;
    the machine sinks keep every span. *)

val pp_value : Format.formatter -> value -> unit

val pp_pretty : Format.formatter -> report -> unit
(** Human tree: one line per (aggregated) span with total/self ticks and
    wall-clock. *)

val pp_metrics : Format.formatter -> report -> unit
(** Counters and histograms, one per line. *)

val pp_jsonl : Format.formatter -> report -> unit
(** JSON lines: one object per span (pre-order, with [depth]), then one per
    counter and histogram. *)

val pp_chrome : Format.formatter -> report -> unit
(** Chrome [trace_event] JSON array, loadable in [about://tracing] or
    Perfetto: spans as complete ("ph":"X") events with ticks and attrs in
    [args], counters as one trailing instant event. *)
