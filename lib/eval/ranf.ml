module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Value = Fq_db.Value
module Relation = Fq_db.Relation
module Relalg = Fq_db.Relalg
module Schema = Fq_db.Schema
module State = Fq_db.State
module Sset = Fq_logic.Formula.Sset

exception Not_ranf of string

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* SRNF → RANF: distribute conjunctive guards into disjunctions whose   *)
(* disjuncts bind unequal variable sets.                                *)
(* ------------------------------------------------------------------ *)

let rec push_guards f =
  match f with
  | Formula.True | Formula.False | Formula.Atom _ | Formula.Eq _ -> f
  | Formula.Not g -> Formula.Not (push_guards g)
  | Formula.Exists (v, g) -> Formula.Exists (v, push_guards g)
  | Formula.Or (g, h) -> Formula.Or (push_guards g, push_guards h)
  | Formula.And _ ->
    let conjuncts = List.map push_guards (Formula.conjuncts f) in
    (* find a disjunction whose sides have unequal free sets and
       distribute the remaining conjuncts into it *)
    let needs_distribution = function
      | Formula.Or (a, b) -> not (Sset.equal (Formula.free_var_set a) (Formula.free_var_set b))
      | _ -> false
    in
    (match List.partition needs_distribution conjuncts with
    | [], _ -> Formula.conj conjuncts
    | Formula.Or (a, b) :: more_or, rest ->
      let others = more_or @ rest in
      push_guards
        (Formula.Or (Formula.conj (a :: others), Formula.conj (b :: others)))
    | _ -> assert false)
  | Formula.Imp _ | Formula.Iff _ | Formula.Forall _ ->
    invalid_arg "Ranf.push_guards: input must be in SRNF"

let to_ranf f = push_guards (Safe_range.srnf f)

(* ------------------------------------------------------------------ *)
(* Translation                                                          *)
(* ------------------------------------------------------------------ *)

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs |> List.rev

let col_of cols x =
  let rec go i = function
    | [] -> raise (Not_ranf (Printf.sprintf "variable %s is not range-restricted here" x))
    | c :: _ when c = x -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 cols

type compiled = Algebra_translate.compiled = {
  plan : Relalg.t;
  columns : string list;
}

let compile ?stats ~domain ~state f =
  let (module D : Fq_domain.Domain.S) = domain in
  let schema = State.schema state in
  let stats =
    match stats with Some s -> s | None -> Fq_db.Optimizer.Stats.of_state state
  in
  let interpret_const c =
    if Term.is_scheme_const c then
      match State.constant state c with
      | v -> v
      | exception Not_found -> raise (Not_ranf (Printf.sprintf "scheme constant %s uninterpreted" c))
    else
      match D.constant c with
      | Some v -> v
      | None -> raise (Not_ranf (Printf.sprintf "constant %S has no %s value" c D.name))
  in
  let arg_of cols = function
    | Term.Var x -> Relalg.Col (col_of cols x)
    | Term.Const c -> Relalg.Const (interpret_const c)
    | Term.App (fn, _) -> raise (Not_ranf (Printf.sprintf "function term %s(...)" fn))
  in
  (* Guard-pushing retries must terminate even on adversarial inputs; the
     counter bounds the total number of retries per compilation. *)
  let retries = ref 0 in
  let count_retry () =
    incr retries;
    if !retries > 200 then raise (Not_ranf "guard pushing did not converge")
  in
  (* natural join of two compiled plans, as a hash equijoin on the
     shared columns (a product when none are shared) *)
  let natural_join cg ch =
    let shared = List.filter (fun v -> List.mem v cg.columns) ch.columns in
    let pairs =
      List.map (fun v -> (col_of cg.columns v, col_of ch.columns v)) shared
    in
    let selected =
      match pairs with
      | [] -> Relalg.Product (cg.plan, ch.plan)
      | _ -> Relalg.Join (pairs, cg.plan, ch.plan)
    in
    let target = dedup (cg.columns @ ch.columns) in
    let all = cg.columns @ ch.columns in
    let projection =
      List.map
        (fun v ->
          let rec find j = function
            | c :: _ when c = v -> j
            | _ :: rest -> find (j + 1) rest
            | [] -> assert false
          in
          find 0 all)
        target
    in
    { plan = Relalg.Project (projection, selected); columns = target }
  in
  (* anti-join: tuples of [cur] with no match in [neg] (free(neg) ⊆ cur) *)
  let anti_join cur neg =
    if not (List.for_all (fun v -> List.mem v cur.columns) neg.columns) then
      raise (Not_ranf "negation is not guarded by its conjunction");
    let joined = natural_join cur neg in
    let matching =
      { plan =
          Relalg.Project (List.map (col_of joined.columns) cur.columns, joined.plan);
        columns = cur.columns }
    in
    { cur with plan = Relalg.Diff (cur.plan, matching.plan) }
  in
  let rec go f =
    match f with
    | Formula.True -> { plan = Relalg.Lit (Relation.make ~arity:0 [ [] ]); columns = [] }
    | Formula.False -> { plan = Relalg.Lit (Relation.empty ~arity:0); columns = [] }
    | Formula.Atom (r, args) when Schema.mem_relation schema r -> db_atom r args
    | Formula.Atom (p, args) ->
      raise
        (Not_ranf
           (Printf.sprintf "domain predicate %s/%d generates no bindings" p (List.length args)))
    | Formula.Eq (Term.Var x, Term.Const c) | Formula.Eq (Term.Const c, Term.Var x) ->
      { plan = Relalg.Lit (Relation.make ~arity:1 [ [ interpret_const c ] ]); columns = [ x ] }
    | Formula.Eq (Term.Const a, Term.Const b) ->
      if Value.equal (interpret_const a) (interpret_const b) then go Formula.True
      else go Formula.False
    | Formula.Eq _ -> raise (Not_ranf "unguarded equality between variables")
    | Formula.Not g ->
      (* only a closed negation is self-contained *)
      let cg = go g in
      if cg.columns <> [] then raise (Not_ranf "unguarded negation")
      else { plan = Relalg.Diff (Relalg.Lit (Relation.make ~arity:0 [ [] ]), cg.plan); columns = [] }
    | Formula.Or (g, h) ->
      let cg = go g and ch = go h in
      if List.sort compare cg.columns <> List.sort compare ch.columns then
        raise (Not_ranf "disjuncts bind different variables (push_guards missed a case)")
      else
        let reordered =
          { plan = Relalg.Project (List.map (col_of ch.columns) cg.columns, ch.plan);
            columns = cg.columns }
        in
        { cg with plan = Relalg.Union (cg.plan, reordered.plan) }
    | Formula.Exists (x, g) ->
      let cg = go g in
      if not (List.mem x cg.columns) then
        raise (Not_ranf (Printf.sprintf "quantified variable %s is not restricted" x))
      else
        let keep = List.filter (fun v -> v <> x) cg.columns in
        { plan = Relalg.Project (List.map (col_of cg.columns) keep, cg.plan); columns = keep }
    | Formula.And _ -> compile_and (Formula.conjuncts f)
    | Formula.Imp _ | Formula.Iff _ | Formula.Forall _ ->
      invalid_arg "Ranf.compile: input not normalized (internal error)"
  and db_atom r args =
    let vars = dedup (List.concat_map Term.vars args) in
    List.iter
      (function
        | Term.App (fn, _) -> raise (Not_ranf (Printf.sprintf "function term %s(...)" fn))
        | Term.Var _ | Term.Const _ -> ())
      args;
    let conds =
      List.concat
        (List.mapi
           (fun i t ->
             match t with
             | Term.Const c -> [ Relalg.Eq (Relalg.Col i, Relalg.Const (interpret_const c)) ]
             | Term.Var x ->
               let rec first j = function
                 | Term.Var y :: _ when y = x -> j
                 | _ :: rest -> first (j + 1) rest
                 | [] -> assert false
               in
               let fst_occ = first 0 args in
               if fst_occ < i then [ Relalg.Eq (Relalg.Col i, Relalg.Col fst_occ) ] else []
             | Term.App _ -> [])
           args)
    in
    let selected = List.fold_left (fun acc c -> Relalg.Select (c, acc)) (Relalg.Rel r) conds in
    let projection =
      List.map
        (fun x ->
          let rec first j = function
            | Term.Var y :: _ when y = x -> j
            | _ :: rest -> first (j + 1) rest
            | [] -> assert false
          in
          first 0 args)
        vars
    in
    { plan = Relalg.Project (projection, selected); columns = vars }
  and compile_and conjuncts =
    (* classify conjuncts *)
    let is_generator = function
      | Formula.Atom (r, _) when Schema.mem_relation schema r -> true
      | Formula.Eq (Term.Var _, Term.Const _) | Formula.Eq (Term.Const _, Term.Var _) -> true
      | Formula.And _ | Formula.Or _ | Formula.Exists _ | Formula.True | Formula.False -> true
      | Formula.Eq (Term.Const _, Term.Const _) -> true
      | _ -> false
    in
    let generators, residual = List.partition is_generator conjuncts in
    if generators = [] then raise (Not_ranf "conjunction has no generating conjunct");
    (* Generators that compile on their own come first; a generator whose
       own variables are not all generated inside it (e.g. ∃z (F(x,z) ∧
       z ≠ y) under the guard F(x,y)) gets the self-compilable guard
       pushed under its quantifier prefix: G ∧ ∃z ψ ≡ G ∧ ∃z (G ∧ ψ). *)
    let rec guard_into g c =
      match c with
      | Formula.Exists (v, body) -> Formula.Exists (v, guard_into g body)
      | Formula.Or (a, b) -> Formula.Or (guard_into g a, guard_into g b)
      | Formula.And (a, b) -> Formula.And (guard_into g a, b)
      | c -> Formula.And (g, c)
    in
    let compiled_or_failed =
      List.map (fun g -> match go g with p -> Ok (g, p) | exception Not_ranf m -> Error (g, m)) generators
    in
    let self_ok = List.filter_map Result.to_option compiled_or_failed in
    if self_ok = [] then
      raise (Not_ranf "conjunction has no self-contained generating conjunct");
    let guard_formula = Formula.conj (List.map fst self_ok) in
    let base =
      List.fold_left
        (fun acc (_, p) -> natural_join acc p)
        (snd (List.hd self_ok))
        (List.tl self_ok)
    in
    let base =
      List.fold_left
        (fun acc r ->
          match r with
          | Ok _ -> acc
          | Error (g, _) ->
            count_retry ();
            natural_join acc (go (guard_into guard_formula g)))
        base compiled_or_failed
    in
    (* apply residual conjuncts until a fixpoint: variable equalities can
       extend the column set, everything else selects or anti-joins *)
    let rec apply cur pending progress stuck =
      match pending with
      | [] ->
        if stuck = [] then cur
        else if progress then apply cur (List.rev stuck) false []
        else
          raise
            (Not_ranf
               (Printf.sprintf "unguarded conjunct: %s"
                  (Formula.to_string (List.hd stuck))))
      | c :: rest -> (
        match c with
        | Formula.Eq (Term.Var x, Term.Var y) ->
          let hx = List.mem x cur.columns and hy = List.mem y cur.columns in
          if hx && hy then
            apply
              { cur with
                plan =
                  Relalg.Select
                    ( Relalg.Eq (Relalg.Col (col_of cur.columns x), Relalg.Col (col_of cur.columns y)),
                      cur.plan ) }
              rest true stuck
          else if hx || hy then begin
            (* extend with a copy of the known column *)
            let known, fresh = if hx then (x, y) else (y, x) in
            let proj = List.map (col_of cur.columns) cur.columns @ [ col_of cur.columns known ] in
            apply
              { plan = Relalg.Project (proj, cur.plan); columns = cur.columns @ [ fresh ] }
              rest true stuck
          end
          else apply cur rest progress (c :: stuck)
        | Formula.Atom (p, args) ->
          (* domain predicate: selection over present columns *)
          if List.for_all (fun v -> List.mem v cur.columns) (dedup (List.concat_map Term.vars args))
          then
            apply
              { cur with
                plan = Relalg.Select (Relalg.Domain_pred (p, List.map (arg_of cur.columns) args), cur.plan) }
              rest true stuck
          else apply cur rest progress (c :: stuck)
        | Formula.Not (Formula.Eq (t, u)) ->
          let vars = dedup (Term.vars t @ Term.vars u) in
          if List.for_all (fun v -> List.mem v cur.columns) vars then
            apply
              { cur with
                plan =
                  Relalg.Select
                    (Relalg.Not (Relalg.Eq (arg_of cur.columns t, arg_of cur.columns u)), cur.plan) }
              rest true stuck
          else apply cur rest progress (c :: stuck)
        | Formula.Not (Formula.Atom (p, args)) when not (Schema.mem_relation schema p) ->
          let vars = dedup (List.concat_map Term.vars args) in
          if List.for_all (fun v -> List.mem v cur.columns) vars then
            apply
              { cur with
                plan =
                  Relalg.Select
                    (Relalg.Not (Relalg.Domain_pred (p, List.map (arg_of cur.columns) args)), cur.plan) }
              rest true stuck
          else apply cur rest progress (c :: stuck)
        | Formula.Not g ->
          (* guarded negation: anti-join when g's variables are covered.
             ψ itself need not be safe-range — on tuples of the current
             plan the generators hold, so ¬ψ ≡ ¬(generators ∧ ψ), and the
             right-hand side is compilable. *)
          if Sset.for_all (fun v -> List.mem v cur.columns) (Formula.free_var_set g) then begin
            let neg =
              try go g
              with Not_ranf _ ->
                count_retry ();
                go (guard_into guard_formula g)
            in
            apply (anti_join cur neg) rest true stuck
          end
          else apply cur rest progress (c :: stuck)
        | _ -> apply cur rest progress (c :: stuck))
    in
    apply base residual false []
  in
  let normalized = to_ranf f in
  match go normalized with
  | compiled ->
    (* order columns by first occurrence among the original free variables *)
    let free = Formula.free_vars f in
    if List.sort compare free <> List.sort compare compiled.columns then
      Error
        (Printf.sprintf "not safe-range: free variables %s vs restricted %s"
           (String.concat "," free)
           (String.concat "," compiled.columns))
    else
      let plan = Relalg.Project (List.map (col_of compiled.columns) free, compiled.plan) in
      Ok { plan = Fq_db.Optimizer.optimize_for ~stats ~schema plan; columns = free }
  | exception Not_ranf msg -> Error ("not RANF-compilable: " ^ msg)

(* shadowing wrapper: compilation cost shows up as its own span *)
let compile ?stats ~domain ~state f =
  Fq_core.Telemetry.with_span "ranf.compile" (fun () -> compile ?stats ~domain ~state f)

let run ?stats ~domain ~state f =
  let (module D : Fq_domain.Domain.S) = domain in
  let* { plan; columns = _ } = compile ?stats ~domain ~state f in
  let domain_pred p values =
    match D.eval_pred p values with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "no %s predicate %s" D.name p)
  in
  match Relalg.eval ~state ~domain_pred plan with
  | rel -> Ok rel
  | exception Invalid_argument msg -> Error msg
