(** Compilation of relational calculus into relational algebra over the
    active domain — the classical counterpart of the {!Safe_range} syntax:
    for domain-independent (in particular safe-range) queries the compiled
    plan computes the natural answer in time polynomial in the database,
    in contrast to the generic enumerate-and-decide evaluator of
    Section 1.1 ({!Fq_eval.Enumerate}).

    The compilation relativizes to the active domain: every subformula
    becomes a plan over its free variables, with unconstrained variables
    ranging over a unary active-domain relation. For a query that is {e
    not} domain-independent the plan still evaluates — to the {e
    active-domain semantics}, which then differs from the natural answer
    (Fact 2.1's query is the canonical witness); tests exploit this
    contrast.

    Supported atoms: database relations and domain predicates applied to
    variables and constants. Function terms (e.g. [x + 1 < y]) have no
    algebraic counterpart here and are rejected. *)

type compiled = {
  plan : Fq_db.Relalg.t;
  columns : string list;  (** free variables, in first-occurrence order *)
}

val compile :
  ?stats:Fq_db.Optimizer.Stats.t ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  ?extra_adom:Fq_db.Value.t list ->
  Fq_logic.Formula.t ->
  (compiled, string) result
(** Compiles against the given state's schema and active domain (the
    query's own constants are added automatically; [extra_adom] can add
    more). The plan embeds the active domain as a literal relation, so it
    is specific to the state.  [?stats] feeds the cost-based optimizer
    passes; default {!Fq_db.Optimizer.Stats.of_state}. *)

val run :
  ?stats:Fq_db.Optimizer.Stats.t ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  ?extra_adom:Fq_db.Value.t list ->
  Fq_logic.Formula.t ->
  (Fq_db.Relation.t, string) result
(** [compile] followed by {!Fq_db.Relalg.eval} with the domain's
    predicates. *)
