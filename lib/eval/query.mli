(** Resilient query evaluation — the degradation chain.

    Theorems 3.1/3.3 rule out deciding up front whether a query is finite,
    so this front-end accepts {e any} query and always returns: it tries
    the fast compiled engines first and falls back to governed enumeration,
    reporting which tier answered, the resources spent, and — when the
    budget runs dry mid-scan — a [Partial] relation with a resume token.

    Tier 1 (safe-range queries only): RANF compilation to adom-free algebra
    plans ({!Ranf}).  Tier 2: active-domain compilation
    ({!Algebra_translate}), still exact for safe-range queries.  Tier 3:
    the Section 1.1 enumerate-and-decide scan under the budget
    ({!Enumerate.run_budgeted}).  Non-safe-range queries go straight to
    tier 3, where active-domain semantics would be wrong. *)

module Budget = Fq_core.Budget

type resume = Outcome.resume = { seen : int; found : Fq_db.Relation.t }
(** Resume token: candidates consumed and tuples found by the interrupted
    scan.  Feed it back through [?resume] with a fresh budget to continue
    where the previous call stopped.  The type (and its JSON form) lives
    in {!Outcome}; this equation keeps historical [Query.resume] callers
    compiling. *)

type verdict = Outcome.verdict =
  | Complete of { answer : Fq_db.Relation.t; tier : string }
      (** [tier] is ["ranf-algebra"], ["adom-algebra"], or ["enumerate"]. *)
  | Partial of { tuples : Fq_db.Relation.t; reason : Budget.failure; resume : resume }
  | Failed of { reason : string }

type report = Outcome.t = {
  verdict : verdict;
  usage : Budget.usage;  (** ticks charged and wall-clock spent *)
  attempts : (string * string) list;
      (** tiers tried before the answering one, with why each passed *)
}
(** An evaluation report {e is} an {!Outcome.t} — serialize it with
    {!Outcome.to_json}, map it to an exit code with {!Outcome.exit_code}. *)

val eval_resilient :
  ?budget:Budget.t ->
  ?max_certified:int ->
  ?cache:Fq_domain.Decide_cache.t ->
  ?resume:resume ->
  ?stats:Fq_db.Optimizer.Stats.t ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  report
(** Never raises and never hangs under a finite budget.  The default
    budget is [Budget.of_fuel 10_000], matching {!Enumerate.run}.  With
    [?resume] the compiled tiers are skipped (the prior call already fell
    through them) and the scan continues from the token.  [?stats] feeds
    the compiled tiers' cost-based optimizer (e.g. a telemetry profile
    via {!Fq_db.Optimizer.Stats.with_profile}); by default each tier
    derives base-cardinality statistics from the state. *)

val pp : Format.formatter -> report -> unit
