module Budget = Fq_core.Budget
module Telemetry = Fq_core.Telemetry
module Formula = Fq_logic.Formula
module Relation = Fq_db.Relation
module State = Fq_db.State
module Schema = Fq_db.Schema

type resume = Outcome.resume = { seen : int; found : Relation.t }

type verdict = Outcome.verdict =
  | Complete of { answer : Relation.t; tier : string }
  | Partial of { tuples : Relation.t; reason : Budget.failure; resume : resume }
  | Failed of { reason : string }

type report = Outcome.t = {
  verdict : verdict;
  usage : Budget.usage;
  attempts : (string * string) list;
}

(* A compiled tier is attempted under the budget: its own exceptions stay
   [Error] strings, while governor trips — raised by the ambient-aware
   engines underneath ([Relalg.eval], the QE procedures) — surface as
   [Budget.failure] and end the whole chain in [Partial]. *)
let attempt_tier ~budget ~tier run =
  Telemetry.with_span ("tier:" ^ tier) (fun () ->
      let outcome =
        match Budget.guard budget run with
        | Ok (Ok answer) -> `Answer answer
        | Ok (Error e) -> (
          match Budget.failure_of_string e with
          | Some reason -> `Budget reason
          | None -> `Tier_failed e)
        | Error reason -> `Budget reason
      in
      Telemetry.set_attr "outcome"
        (Telemetry.Str
           (match outcome with
           | `Answer _ -> "answered"
           | `Budget _ -> "budget"
           | `Tier_failed _ -> "passed"));
      outcome)

let eval_resilient ?budget ?max_certified ?cache ?resume ?stats ~domain ~state f =
  let budget = match budget with Some b -> b | None -> Budget.of_fuel 10_000 in
  Telemetry.with_span "query.eval_resilient" @@ fun () ->
  let arity = List.length (Formula.free_vars f) in
  let partial ?(tuples = Relation.empty ~arity) ?(seen = 0) reason =
    Partial { tuples; reason; resume = { seen; found = tuples } }
  in
  let enumerate attempts =
    let resume = Option.map (fun r -> (r.seen, r.found)) resume in
    let verdict =
      Telemetry.with_span "tier:enumerate" (fun () ->
          match Enumerate.run_budgeted ?max_certified ?cache ?resume ~budget ~domain ~state f with
          | Ok (Enumerate.Complete answer) -> Complete { answer; tier = "enumerate" }
          | Ok (Enumerate.Partial { tuples; seen; reason }) -> partial ~tuples ~seen reason
          | Error e -> Failed { reason = e })
    in
    { verdict; usage = Budget.usage budget; attempts = List.rev attempts }
  in
  let annotate rep =
    Telemetry.set_attr "verdict"
      (Telemetry.Str
         (match rep.verdict with
         | Complete { tier; _ } -> "complete:" ^ tier
         | Partial _ -> "partial"
         | Failed _ -> "failed"));
    Telemetry.set_attr "budget_ticks" (Telemetry.Int rep.usage.Budget.ticks);
    rep
  in
  annotate
    (match resume with
    | Some _ -> enumerate [] (* the prior call already fell through the compiled tiers *)
    | None ->
      let schema = Schema.relations (State.schema state) in
      let finish verdict attempts =
        { verdict; usage = Budget.usage budget; attempts = List.rev attempts }
      in
      (match Safe_range.check ~schema f with
      | Safe_range.Not_safe_range why ->
        (* active-domain compilation computes the wrong semantics here *)
        enumerate [ ("ranf-algebra", "not safe-range: " ^ why) ]
      | Safe_range.Safe_range -> (
        match
          attempt_tier ~budget ~tier:"ranf-algebra" (fun () -> Ranf.run ?stats ~domain ~state f)
        with
        | `Answer answer -> finish (Complete { answer; tier = "ranf-algebra" }) []
        | `Budget reason -> finish (partial reason) []
        | `Tier_failed e1 -> (
          let attempts = [ ("ranf-algebra", e1) ] in
          match
            attempt_tier ~budget ~tier:"adom-algebra" (fun () ->
                Algebra_translate.run ?stats ~domain ~state f)
          with
          | `Answer answer -> finish (Complete { answer; tier = "adom-algebra" }) attempts
          | `Budget reason -> finish (partial reason) attempts
          | `Tier_failed e2 -> enumerate (("adom-algebra", e2) :: attempts)))))

let pp = Outcome.pp
