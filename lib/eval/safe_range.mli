(** Syntactic range restriction — the classic {e effective syntax for
    domain-independent queries} that the paper credits to Vardi, Ullman and
    Van Gelder–Topor (Section 1.4): a recursive subclass of the calculus
    such that every domain-independent query is expressible in it, and
    every formula in it is domain-independent (hence finite over the
    pure-equality domain, where the two classes coincide).

    We implement the safe-range discipline of the standard textbook
    treatment: normalize to {e SRNF} (no [∀], [→], [↔]; negation pushed
    inward but kept above [∃]-blocks), compute the set [rr(φ)] of
    range-restricted variables, and accept exactly the formulas whose free
    variables are all range-restricted and whose every quantified variable
    becomes restricted in its scope. *)

val srnf : Fq_logic.Formula.t -> Fq_logic.Formula.t
(** Safe-range normal form: eliminates [∀]/[→]/[↔], pushes [¬] through
    [∧]/[∨]/[¬], renames bound variables apart. *)

val range_restricted_vars :
  schema:(string * int) list -> Fq_logic.Formula.t -> Fq_logic.Formula.Sset.t
(** [rr(φ)] of an SRNF formula: the free variables guaranteed to range
    over the active domain. Database atoms restrict their variables;
    [x = c] restricts [x]; [x = y] propagates restriction; conjunction
    unions, disjunction intersects, negation restricts nothing; an
    [∃x.ψ]-block requires [x ∈ rr(ψ)] to export anything (else the whole
    block restricts nothing, marking the quantified variable unsafe).
    Domain predicates (such as [<]) restrict nothing. *)

type verdict =
  | Safe_range
  | Not_safe_range of string  (** human-readable reason *)

val check : schema:(string * int) list -> Fq_logic.Formula.t -> verdict
(** Whether the formula is safe-range: every free variable and every
    quantified variable is range-restricted where it matters. Safe-range
    formulas are domain-independent, hence finite in every state. *)

val is_safe_range : schema:(string * int) list -> Fq_logic.Formula.t -> bool
