module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Transform = Fq_logic.Transform
module Sset = Fq_logic.Formula.Sset

let rec srnf_pos f =
  match f with
  | Formula.True | Formula.False | Formula.Atom _ | Formula.Eq _ -> f
  | Formula.Not g -> srnf_neg g
  | Formula.And (g, h) -> Formula.And (srnf_pos g, srnf_pos h)
  | Formula.Or (g, h) -> Formula.Or (srnf_pos g, srnf_pos h)
  | Formula.Imp (g, h) -> Formula.Or (srnf_neg g, srnf_pos h)
  | Formula.Iff (g, h) ->
    Formula.Or (Formula.And (srnf_pos g, srnf_pos h), Formula.And (srnf_neg g, srnf_neg h))
  | Formula.Exists (v, g) -> Formula.Exists (v, srnf_pos g)
  | Formula.Forall (v, g) -> Formula.Not (Formula.Exists (v, srnf_neg g))

and srnf_neg f =
  match f with
  | Formula.True -> Formula.False
  | Formula.False -> Formula.True
  | Formula.Atom _ | Formula.Eq _ -> Formula.Not f
  | Formula.Not g -> srnf_pos g
  | Formula.And (g, h) -> Formula.Or (srnf_neg g, srnf_neg h)
  | Formula.Or (g, h) -> Formula.And (srnf_neg g, srnf_neg h)
  | Formula.Imp (g, h) -> Formula.And (srnf_pos g, srnf_neg h)
  | Formula.Iff (g, h) ->
    Formula.Or (Formula.And (srnf_pos g, srnf_neg h), Formula.And (srnf_neg g, srnf_pos h))
  | Formula.Exists (v, g) -> Formula.Not (Formula.Exists (v, srnf_pos g))
  | Formula.Forall (v, g) -> Formula.Exists (v, srnf_neg g)

let srnf f = Formula.rename_bound ~avoid:Sset.empty (srnf_pos f)

(* Terms that restrict a variable directly: the variable itself as an
   argument of a database atom. *)
let direct_vars ts =
  List.fold_left
    (fun acc t -> match t with Term.Var v -> Sset.add v acc | _ -> acc)
    Sset.empty ts

let is_restricting_eq = function
  | Formula.Eq (Term.Var x, Term.Const _) | Formula.Eq (Term.Const _, Term.Var x) -> Some x
  | _ -> None

let rec range_restricted_vars ~schema f =
  match f with
  | Formula.True | Formula.False -> Sset.empty
  | Formula.Atom (r, ts) when List.mem_assoc r schema -> direct_vars ts
  | Formula.Atom _ -> Sset.empty (* domain predicates restrict nothing *)
  | Formula.Eq _ as e -> (
    match is_restricting_eq e with Some x -> Sset.singleton x | None -> Sset.empty)
  | Formula.Not _ -> Sset.empty
  | Formula.Or (g, h) ->
    Sset.inter (range_restricted_vars ~schema g) (range_restricted_vars ~schema h)
  | Formula.And _ ->
    let conjuncts = Formula.conjuncts f in
    let base =
      List.fold_left
        (fun acc c -> Sset.union acc (range_restricted_vars ~schema c))
        Sset.empty conjuncts
    in
    (* propagate restriction through equalities between variables *)
    let eqs =
      List.filter_map
        (function
          | Formula.Eq (Term.Var x, Term.Var y) -> Some (x, y)
          | _ -> None)
        conjuncts
    in
    let rec fixpoint acc =
      let acc' =
        List.fold_left
          (fun acc (x, y) ->
            if Sset.mem x acc then Sset.add y acc
            else if Sset.mem y acc then Sset.add x acc
            else acc)
          acc eqs
      in
      if Sset.equal acc acc' then acc else fixpoint acc'
    in
    fixpoint base
  | Formula.Exists (x, g) ->
    let r = range_restricted_vars ~schema g in
    if Sset.mem x r then Sset.remove x r else Sset.empty
  | Formula.Imp _ | Formula.Iff _ | Formula.Forall _ ->
    invalid_arg "range_restricted_vars: formula is not in SRNF"

type verdict =
  | Safe_range
  | Not_safe_range of string

exception Unsafe of string

(* Every quantified variable must be restricted within its scope. *)
let rec check_quantifiers ~schema f =
  match f with
  | Formula.True | Formula.False | Formula.Atom _ | Formula.Eq _ -> ()
  | Formula.Not g -> check_quantifiers ~schema g
  | Formula.And (g, h) | Formula.Or (g, h) ->
    check_quantifiers ~schema g;
    check_quantifiers ~schema h
  | Formula.Exists (x, g) ->
    check_quantifiers ~schema g;
    if not (Sset.mem x (range_restricted_vars ~schema g)) then
      raise
        (Unsafe
           (Printf.sprintf "quantified variable %s is not range-restricted in its scope" x))
  | Formula.Imp _ | Formula.Iff _ | Formula.Forall _ ->
    invalid_arg "check_quantifiers: formula is not in SRNF"

let check ~schema f =
  let f = srnf f in
  match check_quantifiers ~schema f with
  | exception Unsafe msg -> Not_safe_range msg
  | () ->
    let free = Formula.free_var_set f in
    let restricted = range_restricted_vars ~schema f in
    let loose = Sset.diff free restricted in
    if Sset.is_empty loose then Safe_range
    else
      Not_safe_range
        (Printf.sprintf "free variable(s) %s are not range-restricted"
           (String.concat ", " (Sset.elements loose)))

let is_safe_range ~schema f = check ~schema f = Safe_range
