module Budget = Fq_core.Budget
module Fault = Fq_core.Fault
module Telemetry = Fq_core.Telemetry
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Value = Fq_db.Value
module Relation = Fq_db.Relation

type outcome =
  | Finite of Relation.t
  | Out_of_fuel of Relation.t

type budgeted =
  | Complete of Relation.t
  | Partial of { tuples : Relation.t; seen : int; reason : Budget.failure }

let ( let* ) = Result.bind

(* Fair k-tuple enumeration: stage n yields the tuples over the first n+1
   elements whose maximal index is exactly n. *)
let tuples ~arity enum =
  if arity = 0 then Seq.return []
  else begin
    (* the materialized prefix of the enumeration, in a doubling buffer
       (appending element-by-element with Array.append is quadratic) *)
    let buf = ref (Array.make 16 (Value.int 0)) in
    let len = ref 0 in
    let seq = ref (enum ()) in
    let element i =
      while !len <= i do
        match !seq () with
        | Seq.Nil -> invalid_arg "Enumerate.tuples: enumeration ran dry"
        | Seq.Cons (v, rest) ->
          if !len = Array.length !buf then begin
            let bigger = Array.make (2 * !len) v in
            Array.blit !buf 0 bigger 0 !len;
            buf := bigger
          end;
          !buf.(!len) <- v;
          incr len;
          seq := rest
      done;
      !buf.(i)
    in
    (* index tuples over [0..n] with at least one coordinate = n *)
    let rec index_tuples k n =
      if k = 0 then Seq.return ([], false)
      else
        Seq.concat_map
          (fun i ->
            Seq.map
              (fun (rest, saw_n) -> (i :: rest, saw_n || i = n))
              (index_tuples (k - 1) n))
          (Seq.init (n + 1) Fun.id)
    in
    let stage n =
      index_tuples arity n
      |> Seq.filter_map (fun (idx, saw_n) ->
             if saw_n then Some (List.map element idx) else None)
    in
    Seq.concat_map stage (Seq.ints 0)
  end

let substitute domain vars tuple f =
  let (module D : Fq_domain.Domain.S) = domain in
  Formula.subst (List.map2 (fun v value -> (v, Term.Const (D.const_name value))) vars tuple) f

let not_in_relation domain vars rel =
  (* ⋀_{ā ∈ rel} ⋁_i xᵢ ≠ aᵢ *)
  let (module D : Fq_domain.Domain.S) = domain in
  Formula.conj
    (List.map
       (fun tup ->
         Formula.disj
           (List.map2 (fun v value -> Formula.neq (Term.Var v) (Term.Const (D.const_name value))) vars tup))
       (Relation.tuples rel))

let decide domain f =
  Fault.hit "decide";
  let (module D : Fq_domain.Domain.S) = domain in
  D.decide f

let certified_complete ?cache ~domain ~state f rel =
  let domain =
    match cache with
    | Some c -> Fq_domain.Decide_cache.domain c domain
    | None -> domain
  in
  let* f' = Translate.formula ~domain ~state f in
  let vars = Formula.free_vars f in
  if vars = [] then Ok true
  else
    let more = Formula.exists_many vars (Formula.And (f', not_in_relation domain vars rel)) in
    Result.map not (decide domain more)

(* A decision procedure running under the ambient budget reports
   exhaustion through its string-error channel; recover the structure so
   the scan can close with [Partial] instead of a hard error. *)
let classify_error e =
  match Budget.failure_of_string e with
  | Some reason -> Budget.Exhausted reason
  | None -> Failure e

let run_budgeted ?(max_certified = 12) ?cache ?resume ~budget ~domain ~state f =
  let domain =
    match cache with
    | Some c -> Fq_domain.Decide_cache.domain c domain
    | None -> domain
  in
  let* f' = Translate.formula ~domain ~state f in
  let vars = Formula.free_vars f in
  let exception Decide_failed of string in
  let decide_exn g =
    match decide domain g with
    | Ok b -> b
    | Error e -> (
      match classify_error e with
      | Budget.Exhausted _ as ex -> raise ex
      | _ -> raise (Decide_failed e))
  in
  if vars = [] then begin
    match Budget.guard budget (fun () -> Telemetry.with_span "enumerate.sentence" (fun () -> decide_exn f')) with
    | Ok holds -> Ok (Complete (Relation.make ~arity:0 (if holds then [ [] ] else [])))
    | Error reason -> Ok (Partial { tuples = Relation.empty ~arity:0; seen = 0; reason })
    | exception Decide_failed e -> Error e
  end
  else begin
    let arity = List.length vars in
    let seen0, found0 =
      match resume with
      | None -> (0, Relation.empty ~arity)
      | Some (seen, rel) ->
        Telemetry.count "enumerate.resume_reentries";
        (seen, rel)
    in
    let seen = ref seen0 in
    let found = ref found0 in
    let scan () =
      if seen0 > 0 then Fault.hit "enumerate.resume";
      (* A resumed scan ([seen0 > 0]) necessarily passed this satisfiability
         gate in the round that consumed its first candidate — don't pay the
         decide again. *)
      if seen0 = 0 && not (decide_exn (Formula.exists_many vars f')) then
        Complete (Relation.empty ~arity)
      else begin
        let (module D : Fq_domain.Domain.S) = domain in
        (* Any enumeration order is sound; visiting the active domain first
           finds the answers of domain-independent queries without scanning
           far into the domain. *)
        let adom_all = Translate.active_domain ~domain ~state f in
        let adom = List.filter D.member adom_all in
        let enum_with_adom () =
          Seq.append (List.to_seq adom) (Seq.append (D.seeds adom_all) (D.enumerate ()))
        in
        (* The candidate order is deterministic, so a resumed run re-enters
           the same enumeration and just skips the consumed prefix. *)
        let candidates = Seq.drop seen0 (tuples ~arity enum_with_adom) in
        let exception Complete_at of Relation.t in
        let exclusion_clause tuple =
          Formula.disj
            (List.map2
               (fun v value -> Formula.neq (Term.Var v) (Term.Const (D.const_name value)))
               vars tuple)
        in
        (* The completeness sentence's exclusion conjunct ⋀_{ā} ⋁ᵢ xᵢ ≠ aᵢ is
           extended by one clause per found tuple instead of being rebuilt
           from the whole relation each time (which is quadratic in the
           answer size). *)
        let excl =
          ref
            (match Relation.tuples found0 with
            | [] -> Formula.True
            | tups -> Formula.conj (List.map exclusion_clause tups))
        in
        let certified_done () =
          Telemetry.with_span "enumerate.certify" @@ fun () ->
          Fault.hit "enumerate.certify";
          Telemetry.count "enumerate.certifications";
          let more = Formula.exists_many vars (Formula.And (f', !excl)) in
          not (decide_exn more)
        in
        let visit tuple =
          Budget.tick budget;
          Fault.hit "enumerate.scan";
          Telemetry.count "enumerate.candidates";
          (* [seen] advances only once the candidate is fully decided: a
             trip inside the decision procedure leaves the resume token
             pointing at this candidate, so no candidate is ever skipped
             undecided. *)
          let sat = decide_exn (substitute domain vars tuple f') in
          incr seen;
          if sat then
            if Relation.mem tuple !found then () (* adom values repeat in the enumeration *)
            else begin
              found := Relation.add tuple !found;
              let clause = exclusion_clause tuple in
              excl := (match !excl with Formula.True -> clause | prev -> Formula.And (prev, clause));
              Budget.ensure_size budget (Relation.cardinal !found);
              (* The completeness sentence grows with every found tuple and
                 can overwhelm the decision procedure; past the certification
                 cap we stop claiming completeness. *)
              if Relation.cardinal !found > max_certified then
                raise (Budget.Exhausted (Budget.Oversize max_certified));
              if certified_done () then raise (Complete_at !found)
            end
        in
        (* A budget trip inside the certification decide loses only the
           certificate, not the scan position — so a resumed run with found
           tuples re-checks completeness before consuming more candidates. *)
        let resumed_complete =
          seen0 > 0 && Relation.cardinal found0 > 0 && certified_done ()
        in
        if resumed_complete then Complete found0
        else
          match Seq.iter visit candidates with
          | () ->
            (* enumeration ran dry — cannot happen on infinite domains *)
            Partial { tuples = !found; seen = !seen; reason = Budget.Fuel_exhausted }
          | exception Complete_at rel -> Complete rel
      end
    in
    match Budget.guard budget (fun () -> Telemetry.with_span "enumerate.scan" scan) with
    | Ok v -> Ok v
    | Error reason -> Ok (Partial { tuples = !found; seen = !seen; reason })
    | exception Decide_failed e -> Error e
  end

let run ?(fuel = 10_000) ?budget ?(max_certified = 12) ?cache ~domain ~state f =
  (* Without an explicit governor, [fuel] keeps its historical meaning — a
     cap on candidates decided, with the decision procedures untouched
     ([~share:false] keeps the budget out of the ambient slot). *)
  let budget = match budget with Some b -> b | None -> Budget.of_fuel ~share:false fuel in
  let* b = run_budgeted ~max_certified ?cache ~budget ~domain ~state f in
  match b with
  | Complete rel -> Ok (Finite rel)
  | Partial { tuples; _ } -> Ok (Out_of_fuel tuples)
