module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Value = Fq_db.Value
module Relation = Fq_db.Relation

type outcome =
  | Finite of Relation.t
  | Out_of_fuel of Relation.t

let ( let* ) = Result.bind

(* Fair k-tuple enumeration: stage n yields the tuples over the first n+1
   elements whose maximal index is exactly n. *)
let tuples ~arity enum =
  if arity = 0 then Seq.return []
  else begin
    (* the materialized prefix of the enumeration, in a doubling buffer
       (appending element-by-element with Array.append is quadratic) *)
    let buf = ref (Array.make 16 (Value.int 0)) in
    let len = ref 0 in
    let seq = ref (enum ()) in
    let element i =
      while !len <= i do
        match !seq () with
        | Seq.Nil -> invalid_arg "Enumerate.tuples: enumeration ran dry"
        | Seq.Cons (v, rest) ->
          if !len = Array.length !buf then begin
            let bigger = Array.make (2 * !len) v in
            Array.blit !buf 0 bigger 0 !len;
            buf := bigger
          end;
          !buf.(!len) <- v;
          incr len;
          seq := rest
      done;
      !buf.(i)
    in
    (* index tuples over [0..n] with at least one coordinate = n *)
    let rec index_tuples k n =
      if k = 0 then Seq.return ([], false)
      else
        Seq.concat_map
          (fun i ->
            Seq.map
              (fun (rest, saw_n) -> (i :: rest, saw_n || i = n))
              (index_tuples (k - 1) n))
          (Seq.init (n + 1) Fun.id)
    in
    let stage n =
      index_tuples arity n
      |> Seq.filter_map (fun (idx, saw_n) ->
             if saw_n then Some (List.map element idx) else None)
    in
    Seq.concat_map stage (Seq.ints 0)
  end

let substitute domain vars tuple f =
  let (module D : Fq_domain.Domain.S) = domain in
  Formula.subst (List.map2 (fun v value -> (v, Term.Const (D.const_name value))) vars tuple) f

let not_in_relation domain vars rel =
  (* ⋀_{ā ∈ rel} ⋁_i xᵢ ≠ aᵢ *)
  let (module D : Fq_domain.Domain.S) = domain in
  Formula.conj
    (List.map
       (fun tup ->
         Formula.disj
           (List.map2 (fun v value -> Formula.neq (Term.Var v) (Term.Const (D.const_name value))) vars tup))
       (Relation.tuples rel))

let decide domain f =
  let (module D : Fq_domain.Domain.S) = domain in
  D.decide f

let certified_complete ?cache ~domain ~state f rel =
  let domain =
    match cache with
    | Some c -> Fq_domain.Decide_cache.domain c domain
    | None -> domain
  in
  let* f' = Translate.formula ~domain ~state f in
  let vars = Formula.free_vars f in
  if vars = [] then Ok true
  else
    let more = Formula.exists_many vars (Formula.And (f', not_in_relation domain vars rel)) in
    Result.map not (decide domain more)

let run ?(fuel = 10_000) ?(max_certified = 12) ?cache ~domain ~state f =
  let domain =
    match cache with
    | Some c -> Fq_domain.Decide_cache.domain c domain
    | None -> domain
  in
  let* f' = Translate.formula ~domain ~state f in
  let vars = Formula.free_vars f in
  if vars = [] then
    let* holds = decide domain f' in
    Ok (Finite (Relation.make ~arity:0 (if holds then [ [] ] else [])))
  else begin
    let arity = List.length vars in
    let* nonempty = decide domain (Formula.exists_many vars f') in
    if not nonempty then Ok (Finite (Relation.empty ~arity))
    else begin
      let (module D : Fq_domain.Domain.S) = domain in
      (* Any enumeration order is sound; visiting the active domain first
         finds the answers of domain-independent queries without scanning
         far into the domain. *)
      let adom_all = Translate.active_domain ~domain ~state f in
      let adom = List.filter D.member adom_all in
      let enum_with_adom () =
        Seq.append (List.to_seq adom) (Seq.append (D.seeds adom_all) (D.enumerate ()))
      in
      let candidates = tuples ~arity enum_with_adom in
      let exception Stop of (outcome, string) result in
      let found = ref (Relation.empty ~arity) in
      (* The completeness sentence's exclusion conjunct ⋀_{ā} ⋁ᵢ xᵢ ≠ aᵢ is
         extended by one clause per found tuple instead of being rebuilt
         from the whole relation each time (which is quadratic in the
         answer size). *)
      let excl = ref Formula.True in
      let remaining = ref fuel in
      let visit tuple =
        if !remaining <= 0 then raise (Stop (Ok (Out_of_fuel !found)));
        decr remaining;
        match decide domain (substitute domain vars tuple f') with
        | Error e -> raise (Stop (Error e))
        | Ok false -> ()
        | Ok true -> (
          if Relation.mem tuple !found then () (* adom values repeat in the enumeration *)
          else begin
            found := Relation.add tuple !found;
            let clause =
              Formula.disj
                (List.map2
                   (fun v value ->
                     Formula.neq (Term.Var v) (Term.Const (D.const_name value)))
                   vars tuple)
            in
            excl := (match !excl with Formula.True -> clause | prev -> Formula.And (prev, clause));
            (* The completeness sentence grows with every found tuple and
               can overwhelm the decision procedure; past the certification
               cap we stop claiming completeness. *)
            if Relation.cardinal !found > max_certified then
              raise (Stop (Ok (Out_of_fuel !found)));
            let more = Formula.exists_many vars (Formula.And (f', !excl)) in
            match decide domain more with
            | Error e -> raise (Stop (Error e))
            | Ok false -> raise (Stop (Ok (Finite !found)))
            | Ok true -> ()
          end)
      in
      match Seq.iter visit candidates with
      | () -> Ok (Out_of_fuel !found) (* enumeration ran dry — cannot happen on infinite domains *)
      | exception Stop r -> r
    end
  end
