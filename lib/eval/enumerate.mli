(** The Section 1.1 query-answering algorithm — the paper's proof that,
    over a countable domain with constants for all elements and a
    decidable theory, {e finite answers are computable}:

    translate the query into a pure domain formula [F'] ({!Translate}),
    ask the decision procedure whether [∃x̄ F'] holds, and if so scan the
    domain's tuple enumeration, testing each candidate; after every hit,
    ask whether [∃x̄ (F' ∧ ⋀_{found ā} x̄ ≠ ā)] still holds and stop when it
    does not. The scan terminates exactly on queries with finite answers
    in the given state ("note that, at least for safe queries, this
    algorithm always stops"); a fuel bound turns divergence on infinite
    answers into an [Out_of_fuel] verdict. *)

module Budget = Fq_core.Budget

type outcome =
  | Finite of Fq_db.Relation.t
      (** The complete (finite) answer, certified by the decision
          procedure. *)
  | Out_of_fuel of Fq_db.Relation.t
      (** Candidates exhausted the fuel; the partial answer so far. The
          query may have an infinite answer in this state — deciding which
          is the (possibly undecidable, Theorem 3.3) relative safety
          problem. *)

type budgeted =
  | Complete of Fq_db.Relation.t
  | Partial of { tuples : Fq_db.Relation.t; seen : int; reason : Budget.failure }
      (** The governor tripped mid-scan: the tuples found so far, the
          number of candidates consumed ([seen], a resume token for
          {!run_budgeted}'s [?resume]), and why the scan stopped. *)

val tuples : arity:int -> (unit -> Fq_db.Value.t Seq.t) -> Fq_db.Value.t list Seq.t
(** Fair enumeration of all [arity]-tuples of an enumerable set (by
    maximal index, so every tuple appears at a finite position). Arity 0
    yields the single empty tuple. *)

val run :
  ?fuel:int ->
  ?budget:Budget.t ->
  ?max_certified:int ->
  ?cache:Fq_domain.Decide_cache.t ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (outcome, string) result
(** Evaluates the query's free variables in their order of occurrence.
    [fuel] bounds the number of enumerated candidate tuples (default
    [10_000]); [max_certified] bounds the answer size the completeness
    sentence is asked about (default [12]) — the sentence is extended
    incrementally with one exclusion clause per found tuple, and past the
    cap the verdict degrades to [Out_of_fuel]. [cache] memoizes every
    [decide] call on alpha-equivalent sentences
    ({!Fq_domain.Decide_cache}); pass the same cache across runs to reuse
    verdicts. Candidates are scanned active-domain-first, then along the
    domain enumeration. Errors propagate from translation or the decision
    procedure. For a {e sentence}, the answer is the 0-ary relation:
    nonempty iff the sentence holds.

    Passing [budget] supersedes [fuel] and runs the scan under the full
    governor (deadline, cancellation, ambient ticking inside the decision
    procedures); without it the fuel integer keeps its historical meaning —
    a cap on the number of candidates decided, with the decision procedures
    untouched. *)

val run_budgeted :
  ?max_certified:int ->
  ?cache:Fq_domain.Decide_cache.t ->
  ?resume:int * Fq_db.Relation.t ->
  budget:Budget.t ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (budgeted, string) result
(** The governed scan. One budget tick per candidate; the budget is also
    installed as the ambient budget for the scan, so budget-aware decision
    procedures checkpoint inside their own loops, and the wall-clock
    deadline cuts even a single long QE call's candidate loop short.
    Budget exhaustion — in the scan or inside a decision procedure —
    becomes [Partial] carrying everything found so far; only translation
    and genuine decision failures surface as [Error]. [resume] (the [seen]
    count and tuples of a previous [Partial]) skips the already-consumed
    prefix of the candidate enumeration, so a sequence of budgeted calls
    converges to the same answer as one unbounded call. *)

val certified_complete :
  ?cache:Fq_domain.Decide_cache.t ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  Fq_db.Relation.t ->
  (bool, string) result
(** The completeness check on its own: does the decision procedure confirm
    that no tuple outside the given relation satisfies the query? *)
