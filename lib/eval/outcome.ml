(* The first-class evaluation outcome.

   Before this module the Complete/Partial/Unsupported taxonomy lived as
   an ad-hoc record inside Query and was re-flattened by every front end
   (fq eval printed it, fq batch re-classified it, exit codes were mapped
   in bin/fq.ml).  Here the taxonomy, its stable JSON schema, and the
   0/3/4 exit-code mapping live once; eval, batch, and the serve wire
   protocol all consume this module unchanged. *)

module Budget = Fq_core.Budget
module Json = Fq_core.Json
module Bigint = Fq_numeric.Bigint
module Value = Fq_db.Value
module Row = Fq_db.Row
module Relation = Fq_db.Relation

type resume = { seen : int; found : Relation.t }

type verdict =
  | Complete of { answer : Relation.t; tier : string }
  | Partial of { tuples : Relation.t; reason : Budget.failure; resume : resume }
  | Failed of { reason : string }

type t = {
  verdict : verdict;
  usage : Budget.usage;
  attempts : (string * string) list;
}

(* ---------------------------- exit codes ---------------------------- *)

let exit_partial = 3
let exit_unsupported = 4

let exit_of_error msg =
  match Budget.failure_of_string msg with
  | Some (Budget.Unsupported _) -> exit_unsupported
  | Some _ -> exit_partial
  | None -> 1

let status o =
  match o.verdict with
  | Complete _ -> "complete"
  | Partial _ -> "partial"
  | Failed { reason } -> (
    match Budget.failure_of_string reason with
    | Some (Budget.Unsupported _) -> "unsupported"
    | _ -> "error")

let exit_code o =
  match o.verdict with
  | Complete _ -> 0
  | Partial _ -> exit_partial
  | Failed { reason } -> exit_of_error reason

(* ------------------------------- JSON ------------------------------- *)

let value_to_json = function
  | Value.Int n -> (
    match Bigint.to_int_opt n with
    | Some i -> Json.Int i
    | None -> Json.Intlit (Bigint.to_string n))
  | Value.Str s -> Json.Str s

let value_of_json = function
  | Json.Int i -> Ok (Value.int i)
  | Json.Intlit s -> (
    match Bigint.of_string s with
    | n -> Ok (Value.big n)
    | exception _ -> Error (Printf.sprintf "outcome: bad integer literal %S" s))
  | Json.Str s -> Ok (Value.str s)
  | j -> Error ("outcome: bad value " ^ Json.to_string j)

let relation_to_json r =
  let rows =
    Array.to_list (Relation.rows r)
    |> List.map (fun row -> Json.List (List.map value_to_json (Row.to_list row)))
  in
  Json.Obj [ ("arity", Json.Int (Relation.arity r)); ("rows", Json.List rows) ]

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    Result.bind (f x) (fun y -> Result.map (fun ys -> y :: ys) (map_result f rest))

let relation_of_json j =
  match (Option.bind (Json.member "arity" j) Json.to_int_opt, Json.member "rows" j) with
  | Some arity, Some (Json.List rows) ->
    Result.map
      (fun rows -> Relation.of_rows ~arity (Array.of_list (List.map Row.of_list rows)))
      (map_result
         (function
           | Json.List vs -> map_result value_of_json vs
           | j -> Error ("outcome: bad row " ^ Json.to_string j))
         rows)
  | _ -> Error ("outcome: bad relation " ^ Json.to_string j)

let resume_to_json { seen; found } =
  Json.Obj [ ("seen", Json.Int seen); ("found", relation_to_json found) ]

let resume_of_json j =
  match (Option.bind (Json.member "seen" j) Json.to_int_opt, Json.member "found" j) with
  | Some seen, Some rel -> Result.map (fun found -> { seen; found }) (relation_of_json rel)
  | _ -> Error ("outcome: bad resume token " ^ Json.to_string j)

let usage_to_json (u : Budget.usage) =
  Json.Obj
    [ ("ticks", Json.Int u.Budget.ticks); ("elapsed_ms", Json.Float u.Budget.elapsed_ms) ]

let usage_of_json j =
  match
    ( Option.bind (Json.member "ticks" j) Json.to_int_opt,
      Option.bind (Json.member "elapsed_ms" j) Json.to_float_opt )
  with
  | Some ticks, Some elapsed_ms -> Ok { Budget.ticks; elapsed_ms }
  | _ -> Error ("outcome: bad usage " ^ Json.to_string j)

let attempts_to_json attempts =
  Json.List
    (List.map
       (fun (tier, reason) ->
         Json.Obj [ ("tier", Json.Str tier); ("reason", Json.Str reason) ])
       attempts)

let attempts_of_json = function
  | None -> Ok []
  | Some (Json.List items) ->
    map_result
      (fun item ->
        match
          ( Option.bind (Json.member "tier" item) Json.to_str_opt,
            Option.bind (Json.member "reason" item) Json.to_str_opt )
        with
        | Some tier, Some reason -> Ok (tier, reason)
        | _ -> Error ("outcome: bad attempt " ^ Json.to_string item))
      items
  | Some j -> Error ("outcome: bad attempts " ^ Json.to_string j)

let to_json o =
  let tail =
    [ ("usage", usage_to_json o.usage); ("attempts", attempts_to_json o.attempts) ]
  in
  match o.verdict with
  | Complete { answer; tier } ->
    Json.Obj
      (("status", Json.Str "complete")
      :: ("tier", Json.Str tier)
      :: ("answer", relation_to_json answer)
      :: tail)
  | Partial { tuples; reason; resume } ->
    Json.Obj
      (("status", Json.Str "partial")
      :: ("reason", Json.Str (Budget.error_string reason))
      :: ("tuples", relation_to_json tuples)
      :: ("resume", resume_to_json resume)
      :: tail)
  | Failed { reason } ->
    Json.Obj (("status", Json.Str (status o)) :: ("reason", Json.Str reason) :: tail)

let of_json j =
  let field name = Json.member name j in
  let str name = Option.bind (field name) Json.to_str_opt in
  Result.bind
    (match field "usage" with
    | None -> Ok { Budget.ticks = 0; elapsed_ms = 0. }
    | Some u -> usage_of_json u)
  @@ fun usage ->
  Result.bind (attempts_of_json (field "attempts")) @@ fun attempts ->
  let finish verdict = Ok { verdict; usage; attempts } in
  match str "status" with
  | Some "complete" -> (
    match (str "tier", field "answer") with
    | Some tier, Some rel ->
      Result.bind (relation_of_json rel) (fun answer -> finish (Complete { answer; tier }))
    | _ -> Error ("outcome: bad complete " ^ Json.to_string j))
  | Some "partial" -> (
    match (str "reason", field "tuples", field "resume") with
    | Some reason, Some rel, Some res -> (
      match Budget.failure_of_string reason with
      | None -> Error (Printf.sprintf "outcome: unknown partial reason %S" reason)
      | Some reason ->
        Result.bind (relation_of_json rel) @@ fun tuples ->
        Result.bind (resume_of_json res) @@ fun resume ->
        finish (Partial { tuples; reason; resume }))
    | _ -> Error ("outcome: bad partial " ^ Json.to_string j))
  | Some ("unsupported" | "error") -> (
    match str "reason" with
    | Some reason -> finish (Failed { reason })
    | None -> Error ("outcome: missing reason " ^ Json.to_string j))
  | Some s -> Error (Printf.sprintf "outcome: unknown status %S" s)
  | None -> Error ("outcome: missing status " ^ Json.to_string j)

(* ----------------------------- rendering ---------------------------- *)

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  (match r.verdict with
  | Complete { answer; tier } ->
    Format.fprintf fmt "complete (%s, %d tuples): %a@," tier (Relation.cardinal answer)
      Relation.pp answer
  | Partial { tuples; reason; resume } ->
    Format.fprintf fmt "partial (%a after %d candidates): %d tuples so far@," Budget.pp_failure
      reason resume.seen (Relation.cardinal tuples)
  | Failed { reason } -> Format.fprintf fmt "failed: %s@," reason);
  List.iter (fun (tier, why) -> Format.fprintf fmt "tier %s passed: %s@," tier why) r.attempts;
  Format.fprintf fmt "spent: %d ticks, %.1f ms@]" r.usage.Budget.ticks r.usage.Budget.elapsed_ms
