module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Value = Fq_db.Value
module Relation = Fq_db.Relation
module Relalg = Fq_db.Relalg
module Schema = Fq_db.Schema
module State = Fq_db.State

type compiled = {
  plan : Relalg.t;
  columns : string list;
}

exception Unsupported of string

let ( let* ) = Result.bind

(* position of [x] in [cols] *)
let col_of cols x =
  let rec go i = function
    | [] -> raise (Unsupported (Printf.sprintf "internal: missing column %s" x))
    | c :: _ when c = x -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 cols

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs |> List.rev

let compile ?stats ~domain ~state ?(extra_adom = []) f =
  let (module D : Fq_domain.Domain.S) = domain in
  let schema = State.schema state in
  let stats =
    match stats with Some s -> s | None -> Fq_db.Optimizer.Stats.of_state state
  in
  let interpret_const c =
    if Term.is_scheme_const c then
      match State.constant state c with
      | v -> v
      | exception Not_found ->
        raise (Unsupported (Printf.sprintf "scheme constant %s is uninterpreted" c))
    else
      match D.constant c with
      | Some v -> v
      | None -> raise (Unsupported (Printf.sprintf "constant %S has no %s value" c D.name))
  in
  let adom_values =
    List.sort_uniq Value.compare
      (Translate.active_domain ~domain ~state f @ extra_adom)
  in
  let adom = Relalg.Lit (Relation.of_values adom_values) in
  (* plan whose columns are [vars], every variable ranging over adom *)
  let adom_power vars =
    match vars with
    | [] -> Relalg.Lit (Relation.make ~arity:0 [ [] ])
    | v :: rest ->
      ignore v;
      List.fold_left (fun acc _ -> Relalg.Product (acc, adom)) adom rest
  in
  (* extend a compiled plan to the given (superset) column list, in order *)
  let extend { plan; columns } target =
    let missing = List.filter (fun v -> not (List.mem v columns)) target in
    let widened = if missing = [] then plan else Relalg.Product (plan, adom_power missing) in
    let wide_cols = columns @ missing in
    let projection = List.map (col_of wide_cols) target in
    { plan = Relalg.Project (projection, widened); columns = target }
  in
  let arg_of cols = function
    | Term.Var x -> Relalg.Col (col_of cols x)
    | Term.Const c -> Relalg.Const (interpret_const c)
    | Term.App (fn, _) ->
      raise (Unsupported (Printf.sprintf "function term %s(...) has no algebraic form" fn))
  in
  let rec go f =
    match f with
    | Formula.True -> { plan = Relalg.Lit (Relation.make ~arity:0 [ [] ]); columns = [] }
    | Formula.False -> { plan = Relalg.Lit (Relation.empty ~arity:0); columns = [] }
    | Formula.Atom (r, args) when Schema.mem_relation schema r ->
      compile_db_atom r args
    | Formula.Atom (p, args) ->
      (* domain predicate over adom^k *)
      let vars = dedup (List.concat_map Term.vars args) in
      let base = adom_power vars in
      let cond = Relalg.Domain_pred (p, List.map (arg_of vars) args) in
      { plan = Relalg.Select (cond, base); columns = vars }
    | Formula.Eq (t, u) ->
      let vars = dedup (Term.vars t @ Term.vars u) in
      let base = adom_power vars in
      let cond = Relalg.Eq (arg_of vars t, arg_of vars u) in
      { plan = Relalg.Select (cond, base); columns = vars }
    | Formula.Not g ->
      let { plan; columns } = go g in
      { plan = Relalg.Diff (adom_power columns, plan); columns }
    | Formula.And (g, h) ->
      let cg = go g in
      let ch = go h in
      natural_join cg ch
    | Formula.Or (g, h) ->
      let cg = go g in
      let ch = go h in
      let target = dedup (cg.columns @ ch.columns) in
      let eg = extend cg target and eh = extend ch target in
      { plan = Relalg.Union (eg.plan, eh.plan); columns = target }
    | Formula.Exists (x, g) ->
      let cg = extend (go g) (dedup (Formula.free_vars g @ [ x ])) in
      (* [extend] appends x over adom when g does not mention it, keeping
         active-domain semantics faithful even for vacuous quantifiers *)
      let keep = List.filter (fun v -> v <> x) cg.columns in
      { plan = Relalg.Project (List.map (col_of cg.columns) keep, cg.plan); columns = keep }
    | Formula.Forall (x, g) -> go (Formula.Not (Formula.Exists (x, Formula.Not g)))
    | Formula.Imp (g, h) -> go (Formula.Or (Formula.Not g, h))
    | Formula.Iff (g, h) ->
      go (Formula.Or (Formula.And (g, h), Formula.And (Formula.Not g, Formula.Not h)))
  and compile_db_atom r args =
    let vars = dedup (List.concat_map Term.vars args) in
    List.iter
      (fun t ->
        match t with
        | Term.App (fn, _) ->
          raise (Unsupported (Printf.sprintf "function term %s(...) inside %s" fn r))
        | Term.Var _ | Term.Const _ -> ())
      args;
    (* select constants and repeated variables, then project to the first
       occurrence of each variable *)
    let conds =
      List.concat
        (List.mapi
           (fun i t ->
             match t with
             | Term.Const c -> [ Relalg.Eq (Relalg.Col i, Relalg.Const (interpret_const c)) ]
             | Term.Var x ->
               (* equate with the first occurrence of x *)
               let first =
                 let rec find j = function
                   | Term.Var y :: _ when y = x -> j
                   | _ :: rest -> find (j + 1) rest
                   | [] -> assert false
                 in
                 find 0 args
               in
               if first < i then [ Relalg.Eq (Relalg.Col i, Relalg.Col first) ] else []
             | Term.App _ -> [])
           args)
    in
    let selected =
      List.fold_left (fun acc c -> Relalg.Select (c, acc)) (Relalg.Rel r) conds
    in
    let projection =
      List.map
        (fun x ->
          let rec find j = function
            | Term.Var y :: _ when y = x -> j
            | _ :: rest -> find (j + 1) rest
            | [] -> assert false
          in
          find 0 args)
        vars
    in
    { plan = Relalg.Project (projection, selected); columns = vars }
  and natural_join cg ch =
    let shared = List.filter (fun v -> List.mem v cg.columns) ch.columns in
    (* shared columns become hash-join keys; without shared columns the
       join degenerates to a product *)
    let pairs =
      List.map (fun v -> (col_of cg.columns v, col_of ch.columns v)) shared
    in
    let selected =
      match pairs with
      | [] -> Relalg.Product (cg.plan, ch.plan)
      | _ -> Relalg.Join (pairs, cg.plan, ch.plan)
    in
    let target = dedup (cg.columns @ ch.columns) in
    let all_cols = cg.columns @ ch.columns in
    let projection =
      List.map
        (fun v ->
          (* first occurrence within the concatenated columns *)
          let rec find j = function
            | c :: _ when c = v -> j
            | _ :: rest -> find (j + 1) rest
            | [] -> assert false
          in
          find 0 all_cols)
        target
    in
    { plan = Relalg.Project (projection, selected); columns = target }
  in
  match go f with
  | compiled ->
    Ok { compiled with plan = Fq_db.Optimizer.optimize_for ~stats ~schema compiled.plan }
  | exception Unsupported msg -> Error msg

(* shadowing wrapper: compilation cost shows up as its own span *)
let compile ?stats ~domain ~state ?extra_adom f =
  Fq_core.Telemetry.with_span "adom.compile" (fun () ->
      compile ?stats ~domain ~state ?extra_adom f)

let run ?stats ~domain ~state ?extra_adom f =
  let (module D : Fq_domain.Domain.S) = domain in
  let* { plan; columns = _ } = compile ?stats ~domain ~state ?extra_adom f in
  let domain_pred p values =
    match D.eval_pred p values with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "no %s predicate %s" D.name p)
  in
  match Relalg.eval ~state ~domain_pred plan with
  | rel -> Ok rel
  | exception Invalid_argument msg -> Error msg
