(** Relational-algebra normal form: direct compilation of safe-range
    queries into algebra plans that never materialize the active domain.

    {!Algebra_translate} compiles {e any} formula by relativizing to the
    active domain — simple and total, but every negation and loose
    variable costs an [adom^k] product. For {e safe-range} formulas the
    classical RANF route does better: rewrite so that every disjunction
    joins subformulas with equal free variables and every negation and
    every variable is guarded by a positive conjunct, then translate
    conjunctions to joins, guarded negations to anti-joins, disjunctions
    to unions and existentials to projections. The resulting plans touch
    only the stored relations.

    Tests check plan-for-plan agreement with {!Algebra_translate} and the
    Section 1.1 evaluator; the benchmark harness measures the plan-size
    and evaluation-time gap (a DESIGN.md ablation). *)

val to_ranf : Fq_logic.Formula.t -> Fq_logic.Formula.t
(** SRNF followed by guard distribution: conjunctions push into
    disjunctions whose disjuncts bind unequal variable sets, so that the
    translation below applies. Preserves logical equivalence. *)

val compile :
  ?stats:Fq_db.Optimizer.Stats.t ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (Algebra_translate.compiled, string) result
(** Fails (rather than falling back) when the formula is not safe-range —
    use {!Algebra_translate} for the general active-domain semantics. The
    state is used only to interpret scheme constants and derive optimizer
    statistics; the plan contains no active-domain literal.  [?stats]
    feeds the cost-based optimizer passes (join ordering, predicate
    placement) — by default {!Fq_db.Optimizer.Stats.of_state}, i.e. base
    cardinalities without an observed profile. *)

val run :
  ?stats:Fq_db.Optimizer.Stats.t ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (Fq_db.Relation.t, string) result
