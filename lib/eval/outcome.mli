(** The evaluation outcome — the system's one public verdict type.

    Theorems 3.1/3.3 rule out an effective syntax for the finite queries,
    so no boundary of this system can promise "finite answer or syntax
    error": every evaluation surface (the [fq eval] CLI, the [fq batch]
    runner, the [fq serve] wire protocol) must speak the same {e semantic}
    taxonomy instead — a complete certified answer, a partial answer with
    resume evidence, or a structured refusal.  This module is that
    taxonomy made first-class: one record, one JSON schema, one
    exit-code mapping, shared verbatim by all three front ends.

    {b JSON schema} (stable; version bumps add fields, never repurpose):
    {v
    {"status":"complete","tier":TIER,"answer":REL,
     "usage":{"ticks":N,"elapsed_ms":F},"attempts":[ATTEMPT...]}
    {"status":"partial","reason":REASON,"tuples":REL,
     "resume":{"seen":N,"found":REL},"usage":...,"attempts":...}
    {"status":"unsupported","reason":REASON,"usage":...,"attempts":...}
    {"status":"error","reason":REASON,"usage":...,"attempts":...}

    REL     = {"arity":N,"rows":[[VALUE,...],...]}   (row-sorted)
    VALUE   = JSON number (integers, bigint-safe) | JSON string
    ATTEMPT = {"tier":TIER,"reason":WHY}             (tiers that passed)
    REASON  = the stable Budget.error_string rendering
    v} *)

module Budget = Fq_core.Budget
module Json = Fq_core.Json

type resume = { seen : int; found : Fq_db.Relation.t }
(** Resume evidence of an interrupted scan: candidates consumed and
    tuples found.  Round-trips through JSON, so a client of [fq serve]
    can carry its own scan position across requests (re-entrant query
    sessions). *)

type verdict =
  | Complete of { answer : Fq_db.Relation.t; tier : string }
      (** [tier] is ["ranf-algebra"], ["adom-algebra"], or ["enumerate"]. *)
  | Partial of { tuples : Fq_db.Relation.t; reason : Budget.failure; resume : resume }
  | Failed of { reason : string }
      (** Classified further by {!status}: a reason parsing as
          [Budget.Unsupported] is ["unsupported"], the rest ["error"]. *)

type t = {
  verdict : verdict;
  usage : Budget.usage;  (** ticks charged and wall-clock spent *)
  attempts : (string * string) list;
      (** tiers tried before the answering one, with why each passed *)
}

(** {1 Exit codes} — the one place the 0/3/4 mapping lives. *)

val exit_partial : int
(** [3] *)

val exit_unsupported : int
(** [4] *)

val exit_code : t -> int
(** [0] complete, [3] partial, [4] unsupported, [1] other error. *)

val exit_of_error : string -> int
(** The same classification for bare error strings on paths that never
    produce a full outcome (a parse error, an I/O failure): [4] when the
    string parses as [Budget.Unsupported], [3] for other budget failures,
    [1] otherwise. *)

val status : t -> string
(** ["complete"], ["partial"], ["unsupported"], or ["error"]. *)

(** {1 JSON} *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} on its range ([to_json] after [of_json] is the
    identity up to field order). *)

val resume_to_json : resume -> Json.t

val resume_of_json : Json.t -> (resume, string) result

val relation_to_json : Fq_db.Relation.t -> Json.t

val relation_of_json : Json.t -> (Fq_db.Relation.t, string) result

val pp : Format.formatter -> t -> unit
(** The human rendering used by [fq eval --verbose]. *)
